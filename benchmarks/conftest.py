"""Shared benchmark configuration.

Each ``bench_*`` file regenerates one table/figure of the paper at a
reduced trace length (``BENCH_INSTRUCTIONS``) and prints the rendered
rows (run ``pytest benchmarks/ --benchmark-only -s`` to see them).
Full-scale regeneration goes through ``python -m repro.harness``.
"""

from __future__ import annotations

import os

import pytest

#: per-program trace length used by the benchmarks
BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "250000"))


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark *function* with a single timed round (experiments are
    deterministic and expensive — statistics over rounds add nothing)."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )


@pytest.fixture
def bench_instructions() -> int:
    return BENCH_INSTRUCTIONS

"""Regenerate the S6.2 comparison against Johnson's coupled design."""

from conftest import run_once

from repro.harness.experiments import johnson_comparison


def test_johnson(benchmark, bench_instructions):
    result = run_once(benchmark, johnson_comparison, instructions=bench_instructions)
    print()
    print(result)
    data = result.data
    nls = data["1024 NLS-table + gshare"]
    johnson = data["Johnson successor index (1-bit)"]
    assert nls < johnson  # decoupled two-level beats coupled one-bit

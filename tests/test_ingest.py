"""External trace ingestion: formats, normalisation, store, wiring.

Covers the docs/TRACES.md contract end to end:

* round-trips — writing a trace back out in either on-disk format and
  re-ingesting it reproduces the exact packed columns, the same
  content digest, and a byte-identical :class:`SimulationReport`;
* malformed inputs — every rejection carries a one-line positional
  error (``<source>: line N`` / ``record N (byte offset B)``);
* compression — gzip/xz variants stream through the same readers and
  land on the same ``external:<sha256>`` name;
* integration — the external-trace store, ``corpus.trace_key`` /
  ``generate_trace`` resolution, the harness CLI (``ingest`` and
  ``--trace``) and the service job-spec validator.

The committed fixtures under ``tests/fixtures/`` are the same files
the CI ``ingest-smoke`` job replays (regenerate them with
``tests/fixtures/regen.py``).
"""

from __future__ import annotations

import gzip
import io
import lzma
import os

import numpy as np
import pytest

from repro.harness.checkpoint import report_to_dict
from repro.harness.cli import main as harness_main
from repro.harness.config import ArchitectureConfig
from repro.harness.runner import simulate
from repro.isa.branches import BranchKind
from repro.service.protocol import JobSpecError, parse_job_spec
from repro.workloads import corpus
from repro.workloads.formats import (
    TraceFormatError,
    detect_format,
    read_records,
)
from repro.workloads.formats import cbp as cbp_format
from repro.workloads.formats import champsim as champsim_format
from repro.workloads.ingest import (
    EXTERNAL_DIR_ENV_VAR,
    external_name,
    external_trace_path,
    ingest_and_store,
    ingest_file,
    is_external,
    load_external,
    store_external,
    trace_digest,
)

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

#: every committed fixture encodes this exact control flow
FIXTURE_VARIANTS = ("demo.cbp", "demo.cbp.gz", "demo.bt", "demo.bt.xz")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


@pytest.fixture
def external_dir(tmp_path, monkeypatch):
    """Point the external-trace store at a per-test directory."""
    directory = tmp_path / "external-traces"
    monkeypatch.setenv(EXTERNAL_DIR_ENV_VAR, str(directory))
    corpus.clear_trace_cache()
    yield str(directory)
    corpus.clear_trace_cache()


def columns(trace):
    return {key: np.asarray(value) for key, value in trace.packed().items()}


class TestFixtures:
    def test_all_variants_same_digest(self):
        names = {ingest_file(fixture(name)).name for name in FIXTURE_VARIANTS}
        assert len(names) == 1
        (name,) = names
        assert is_external(name)

    def test_fixture_trace_is_valid_and_branchy(self):
        trace = ingest_file(fixture("demo.cbp"))
        trace.validate()
        kinds = set(np.asarray(trace.packed()["kinds"]).tolist())
        assert {
            BranchKind.CONDITIONAL,
            BranchKind.UNCONDITIONAL,
            BranchKind.CALL,
            BranchKind.RETURN,
            BranchKind.INDIRECT,
        } == {BranchKind(kind) for kind in kinds}

    def test_format_detection(self):
        assert detect_format(fixture("demo.cbp")) == "cbp"
        assert detect_format(fixture("demo.cbp.gz")) == "cbp"
        assert detect_format(fixture("demo.bt")) == "champsim"
        assert detect_format(fixture("demo.bt.xz")) == "champsim"


class TestRoundTrip:
    @pytest.mark.parametrize("fmt", ["cbp", "champsim"])
    def test_write_then_ingest_is_exact(self, tmp_path, fmt):
        original = ingest_file(fixture("demo.cbp"))
        writer = cbp_format if fmt == "cbp" else champsim_format
        path = str(tmp_path / f"copy.{fmt}")
        writer.write(original, path)
        again = ingest_file(path, fmt=fmt)
        assert again.name == original.name
        for key, column in columns(original).items():
            assert np.array_equal(column, columns(again)[key]), key

    @pytest.mark.parametrize("fmt", ["cbp", "champsim"])
    def test_round_trip_report_is_byte_identical(self, tmp_path, fmt):
        """The replayed report must match the direct one exactly."""
        original = ingest_file(fixture("demo.cbp"))
        writer = cbp_format if fmt == "cbp" else champsim_format
        path = str(tmp_path / f"copy.{fmt}")
        writer.write(original, path)
        again = ingest_file(path)
        config = ArchitectureConfig(
            frontend="btb", entries=64, cache_kb=4, attribution=True
        )
        direct = report_to_dict(simulate(config, original))
        replayed = report_to_dict(simulate(config, again))
        assert direct == replayed

    def test_reference_and_fast_agree_on_ingested_trace(self):
        trace = ingest_file(fixture("demo.bt"))
        config = ArchitectureConfig(frontend="btb", entries=64, cache_kb=4)
        import dataclasses

        reference = simulate(config, trace)
        fast = simulate(
            dataclasses.replace(config, engine="fast"), trace
        )
        assert reference.summary() == fast.summary()

    def test_synthetic_trace_survives_both_formats(self, tmp_path):
        trace = corpus.generate_trace("li", instructions=20_000)
        for writer, suffix in ((cbp_format, "cbp"), (champsim_format, "bt")):
            path = str(tmp_path / f"li.{suffix}")
            writer.write(trace, path)
            again = ingest_file(path)
            for key, column in columns(trace).items():
                assert np.array_equal(column, columns(again)[key]), key


class TestCompression:
    def test_gzip_stream(self, tmp_path):
        raw = open(fixture("demo.cbp"), "rb").read()
        path = tmp_path / "demo.txt.gz"
        path.write_bytes(gzip.compress(raw))
        assert ingest_file(str(path)).name == ingest_file(
            fixture("demo.cbp")
        ).name

    def test_xz_stream_without_extension(self, tmp_path):
        raw = open(fixture("demo.bt"), "rb").read()
        path = tmp_path / "mystery-file"
        path.write_bytes(lzma.compress(raw))
        assert ingest_file(str(path)).name == ingest_file(
            fixture("demo.bt")
        ).name

    def test_truncated_gzip_is_positional(self, tmp_path):
        raw = gzip.compress(open(fixture("demo.cbp"), "rb").read())
        path = tmp_path / "trunc.cbp.gz"
        path.write_bytes(raw[: len(raw) - 7])
        with pytest.raises((TraceFormatError, EOFError, OSError)):
            ingest_file(str(path))


def cbp_lines(*lines: str) -> io.BytesIO:
    return io.BytesIO(("\n".join(lines) + "\n").encode())


class TestMalformedCBP:
    """Every rejection names the source and the offending line."""

    def expect(self, stream, message):
        with pytest.raises(TraceFormatError) as excinfo:
            list(cbp_format.read(stream, source="bad.cbp"))
        assert "bad.cbp" in str(excinfo.value)
        assert message in str(excinfo.value)
        return str(excinfo.value)

    def test_wrong_field_count(self):
        err = self.expect(
            cbp_lines("# entry 0x1000", "0x100c CND 0x2000"),
            "expected 4 fields",
        )
        assert "line 2" in err

    def test_unknown_mnemonic(self):
        self.expect(
            cbp_lines("0x100c WAT 0x2000 T"), "unknown branch kind"
        )

    def test_bad_taken_flag(self):
        self.expect(cbp_lines("0x100c CND 0x2000 MAYBE"), "taken flag")

    def test_non_integer_pc(self):
        self.expect(cbp_lines("zork CND 0x2000 T"), "not an integer")

    def test_duplicate_entry_directive(self):
        err = self.expect(
            cbp_lines("# entry 0x1000", "# entry 0x2000"),
            "duplicate entry directive",
        )
        assert "line 2" in err

    def test_late_entry_directive(self):
        self.expect(
            cbp_lines("0x100c CND 0x2000 T", "# entry 0x1000"),
            "entry directive must precede",
        )

    def test_binary_garbage_is_not_utf8(self):
        self.expect(io.BytesIO(b"\xff\xfe\x00\x41"), "not valid UTF-8")


class TestMalformedSemantics:
    """Normalisation-level rejections carry the record's position."""

    def ingest(self, *lines: str):
        return cbp_format.read(cbp_lines(*lines), source="bad.cbp")

    def expect(self, message, *lines):
        from repro.workloads.ingest import ingest_records

        with pytest.raises(TraceFormatError) as excinfo:
            ingest_records(self.ingest(*lines), source="bad.cbp")
        assert message in str(excinfo.value)
        return str(excinfo.value)

    def test_misaligned_pc(self):
        self.expect("is not 4-byte aligned", "0x1001 CND 0x2000 T")

    def test_misaligned_target(self):
        self.expect("is not 4-byte aligned", "0x100c CND 0x2001 T")

    def test_pc_before_block_start(self):
        err = self.expect(
            "precedes the current block",
            "# entry 0x1000",
            "0x100c CND 0x2000 T",
            "0x1004 CND 0x2000 T",
        )
        assert "line 3" in err

    def test_not_taken_unconditional(self):
        self.expect("always redirect", "0x100c JMP 0x2000 N")

    def test_taken_with_zero_target(self):
        self.expect("target 0", "0x100c CND 0x0 T")

    def test_address_overflow(self):
        self.expect("exceeds the 63-bit", "0x8000000000000000 CND 0x2000 T")

    def test_empty_input(self):
        self.expect("contains no branch records", "# just a comment")


class TestMalformedChampSim:
    def test_truncated_record_names_offset(self, tmp_path):
        path = tmp_path / "trunc.bt"
        good = open(fixture("demo.bt"), "rb").read()
        path.write_bytes(good[:-5])
        with pytest.raises(TraceFormatError) as excinfo:
            ingest_file(str(path), fmt="champsim")
        assert "byte offset" in str(excinfo.value)

    def test_unknown_type_code(self, tmp_path):
        path = tmp_path / "badtype.bt"
        good = bytearray(open(fixture("demo.bt"), "rb").read())
        good[16 + 8] = 99  # type byte of the first record
        path.write_bytes(bytes(good))
        with pytest.raises(TraceFormatError) as excinfo:
            ingest_file(str(path), fmt="champsim")
        assert "branch-type code 99" in str(excinfo.value)
        assert "record 0" in str(excinfo.value)

    def test_unsupported_header_version(self, tmp_path):
        path = tmp_path / "badver.bt"
        good = bytearray(open(fixture("demo.bt"), "rb").read())
        good[4] = 42  # version field of the CSBT header
        path.write_bytes(bytes(good))
        with pytest.raises(TraceFormatError) as excinfo:
            ingest_file(str(path), fmt="champsim")
        assert "version" in str(excinfo.value)


class TestStore:
    def test_store_then_load_is_identical(self, external_dir):
        trace, name = ingest_and_store(fixture("demo.cbp"))
        loaded = load_external(name)
        for key, column in columns(trace).items():
            assert np.array_equal(column, columns(loaded)[key]), key

    def test_store_is_idempotent(self, external_dir):
        _, first = ingest_and_store(fixture("demo.cbp"))
        _, second = ingest_and_store(fixture("demo.bt.xz"))
        assert first == second
        stored = [
            name
            for name in os.listdir(external_dir)
            if name.endswith(".npz")
        ]
        assert len(stored) == 1

    def test_load_missing_names_ingest_command(self, external_dir):
        missing = "external:" + "0" * 64
        with pytest.raises(FileNotFoundError) as excinfo:
            load_external(missing)
        assert "ingest" in str(excinfo.value)
        assert EXTERNAL_DIR_ENV_VAR in str(excinfo.value)

    def test_load_detects_tampering(self, external_dir):
        trace, name = ingest_and_store(fixture("demo.cbp"))
        other = corpus.generate_trace("li", instructions=20_000)
        other.save(external_trace_path(name))
        with pytest.raises(ValueError) as excinfo:
            load_external(name)
        assert "re-ingest" in str(excinfo.value)

    def test_invalid_external_name_rejected(self):
        with pytest.raises(ValueError):
            external_trace_path("external:not-a-digest")

    def test_digest_ignores_trace_name(self):
        a = ingest_file(fixture("demo.cbp"))
        b = ingest_file(fixture("demo.cbp"))
        b.name = "renamed"
        assert trace_digest(a) == trace_digest(b)
        assert external_name(a) == external_name(b)


class TestCorpusIntegration:
    def test_trace_key_ignores_generation_knobs(self, external_dir):
        _, name = ingest_and_store(fixture("demo.cbp"))
        key_a = corpus.trace_key(name, instructions=123, seed=9)
        key_b = corpus.trace_key(name)
        assert key_a == key_b == (name, 0, 0, "natural")

    def test_generate_trace_resolves_external(self, external_dir):
        trace, name = ingest_and_store(fixture("demo.cbp"))
        resolved = corpus.generate_trace(name)
        assert resolved.name == name
        assert resolved.n_events == trace.n_events
        # memoised: the second call returns the same object
        assert corpus.generate_trace(name) is resolved

    def test_simulate_by_external_name(self, external_dir):
        _, name = ingest_and_store(fixture("demo.cbp"))
        config = ArchitectureConfig(frontend="btb", entries=64, cache_kb=4)
        report = simulate(config, name)
        assert report.program == name
        assert report.n_instructions > 0


class TestServiceIntegration:
    def test_job_spec_accepts_external_program(self, external_dir):
        _, name = ingest_and_store(fixture("demo.cbp"))
        spec = parse_job_spec(
            {
                "experiment": "replay",
                "programs": [name],
                "instructions": 10_000,
            }
        )
        assert {cell.program for cell in spec.cells} == {name}

    def test_job_spec_rejects_lookalike(self):
        with pytest.raises(JobSpecError) as excinfo:
            parse_job_spec(
                {"experiment": "replay", "programs": ["external-notakey"]}
            )
        assert "unknown program" in str(excinfo.value)


class TestCLI:
    def test_ingest_subcommand(self, external_dir, capsys):
        assert (
            harness_main(["ingest", "--trace", fixture("demo.cbp")]) == 0
        )
        out = capsys.readouterr().out
        assert "external:" in out
        assert "replay" in out

    def test_ingest_requires_trace(self, capsys):
        with pytest.raises(SystemExit):
            harness_main(["ingest"])

    def test_trace_flag_joins_sweep(self, external_dir, capsys):
        assert (
            harness_main(
                [
                    "replay",
                    "--trace",
                    fixture("demo.bt"),
                    "--engine",
                    "fast",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fall-through" in out
        assert "external:" in out

    def test_malformed_trace_is_one_line_error(
        self, external_dir, tmp_path, capsys
    ):
        bad = tmp_path / "bad.cbp"
        bad.write_text("0x100c CND 0x2000\n")
        with pytest.raises(SystemExit) as excinfo:
            harness_main(["ingest", "--trace", str(bad)])
        assert excinfo.value.code == 2
        out = capsys.readouterr().out
        assert "ingest:" in out
        assert "line 1" in out

    def test_missing_trace_file_is_actionable(
        self, external_dir, tmp_path, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            harness_main(
                ["ingest", "--trace", str(tmp_path / "nope.cbp")]
            )
        assert excinfo.value.code == 2
        assert "check the path" in capsys.readouterr().out

    def test_malformed_external_key_is_one_line_error(
        self, external_dir, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            harness_main(["replay", "--programs", "external:deadbeef"])
        assert excinfo.value.code == 2
        assert "malformed external trace name" in capsys.readouterr().out

    def test_missing_external_key_is_one_line_error(
        self, external_dir, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            harness_main(["replay", "--programs", "external:" + "0" * 64])
        assert excinfo.value.code == 2
        out = capsys.readouterr().out
        assert "no stored trace" in out
        assert EXTERNAL_DIR_ENV_VAR in out

    def test_trace_dir_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv(EXTERNAL_DIR_ENV_VAR, raising=False)
        store = tmp_path / "store"
        assert (
            harness_main(
                [
                    "ingest",
                    "--trace",
                    fixture("demo.cbp"),
                    "--trace-dir",
                    str(store),
                ]
            )
            == 0
        )
        assert any(
            name.endswith(".npz") for name in os.listdir(str(store))
        )


class TestServerProfiles:
    """The modern-server profiles hit the footprint/attribution goals
    (full-budget calibration tables live in docs/WORKLOADS.md)."""

    @pytest.mark.parametrize("program", ["server-frontend", "server-leaf"])
    def test_profile_generates_and_validates(self, program):
        trace = corpus.generate_trace(program, instructions=60_000)
        trace.validate()
        assert trace.n_instructions >= 60_000

    def test_frontend_capacity_dominates_attribution(self):
        trace = corpus.generate_trace("server-frontend", instructions=150_000)
        config = ArchitectureConfig(
            frontend="btb",
            entries=256,
            btb_assoc=4,
            cache_kb=16,
            attribution=True,
        )
        report = simulate(config, trace)
        causes = report.attribution["causes"]
        total = sum(causes.values())
        capacity = causes.get("btb-miss", 0.0) + causes.get(
            "nls-displaced", 0.0
        )
        assert capacity > 0.35 * total

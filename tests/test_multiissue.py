"""Tests for the multi-issue fetch-bandwidth model (§8 extension)."""

import pytest

from repro.fetch.multiissue import FetchBandwidthModel, MultiIssueReport
from repro.harness.config import ArchitectureConfig
from repro.harness.experiments import multi_issue
from repro.isa.branches import BranchKind
from repro.workloads.corpus import generate_trace
from repro.workloads.trace import Trace


class TestBlockFetchCycles:
    def test_width_one_is_one_per_instruction(self):
        model = FetchBandwidthModel(width=1)
        assert model.block_fetch_cycles(0x1000, 7) == 7

    def test_aligned_block_packs_fully(self):
        model = FetchBandwidthModel(width=4)
        # 8 instructions starting at a line boundary: 2 groups of 4
        assert model.block_fetch_cycles(0x1000, 8) == 2

    def test_line_boundary_splits_group(self):
        model = FetchBandwidthModel(width=4)
        # start 2 instructions before a line end: 2 + 4 + 2
        assert model.block_fetch_cycles(0x1018, 8) == 3

    def test_width_wider_than_line(self):
        model = FetchBandwidthModel(width=16)
        # a line holds 8 instructions: one line read per cycle
        assert model.block_fetch_cycles(0x1000, 16) == 2

    def test_single_instruction(self):
        model = FetchBandwidthModel(width=8)
        assert model.block_fetch_cycles(0x101C, 1) == 1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            FetchBandwidthModel(width=0)
        with pytest.raises(ValueError):
            FetchBandwidthModel(width=4, line_bytes=24)


class TestTraceCycles:
    def make_trace(self):
        trace = Trace("t")
        trace.append(0x1000, 8, BranchKind.UNCONDITIONAL, True, 0x1000)
        trace.append(0x1000, 8, BranchKind.UNCONDITIONAL, True, 0x1000)
        return trace

    def test_fetch_cycles_sums_blocks(self):
        model = FetchBandwidthModel(width=4)
        assert model.fetch_cycles(self.make_trace()) == 4

    def test_wider_is_never_slower(self):
        trace = generate_trace("li", instructions=20_000)
        cycles = [
            FetchBandwidthModel(width=width).fetch_cycles(trace)
            for width in (1, 2, 4, 8)
        ]
        assert cycles == sorted(cycles, reverse=True)

    def test_width_one_equals_instruction_count(self):
        trace = generate_trace("li", instructions=20_000)
        assert FetchBandwidthModel(width=1).fetch_cycles(trace) == trace.n_instructions


class TestEvaluate:
    def test_ipc_bounded_by_width(self):
        trace = generate_trace("li", instructions=30_000)
        config = ArchitectureConfig(frontend="nls-table", entries=1024)
        report = config.build().run(trace, warmup_fraction=0.0)
        for width in (1, 2, 4):
            result = FetchBandwidthModel(width).evaluate(trace, report)
            assert 0.0 < result.ipc <= width
            assert 0.0 < result.fetch_efficiency <= 1.0

    def test_requires_full_trace_report(self):
        trace = generate_trace("li", instructions=30_000)
        config = ArchitectureConfig(frontend="nls-table", entries=1024)
        warmed = config.build().run(trace, warmup_fraction=0.5)
        with pytest.raises(ValueError):
            FetchBandwidthModel(2).evaluate(trace, warmed)

    def test_report_totals(self):
        result = MultiIssueReport(
            width=4, n_instructions=100, fetch_cycles=40, penalty_cycles=10.0
        )
        assert result.total_cycles == 50.0
        assert result.ipc == pytest.approx(2.0)
        assert result.fetch_efficiency == pytest.approx(100 / 160)


class TestExperiment:
    def test_nls_advantage_grows_with_width(self):
        result = multi_issue(programs=("gcc",), instructions=80_000, widths=(1, 8))
        nls = result.data["1024 NLS-table"]
        btb = result.data["128 BTB"]
        # absolute IPC gap widens with width
        assert (nls[8] - btb[8]) > (nls[1] - btb[1])

    def test_oracle_is_upper_bound(self):
        result = multi_issue(programs=("li",), instructions=40_000, widths=(4,))
        assert result.data["oracle fetch"][4] >= result.data["1024 NLS-table"][4]

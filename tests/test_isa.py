"""Tests for the ISA layer: branch taxonomy and address geometry."""

import pytest

from repro.isa import (
    AddressSpace,
    BranchKind,
    BREAK_KINDS,
    INSTRUCTION_BYTES,
    align_instruction,
    instruction_index,
    is_break,
    target_known_at_decode,
    uses_return_stack,
)


class TestBranchKind:
    def test_five_break_kinds(self):
        assert len(BREAK_KINDS) == 5
        assert BranchKind.NOT_A_BRANCH not in BREAK_KINDS

    def test_is_break(self):
        assert not is_break(BranchKind.NOT_A_BRANCH)
        for kind in BREAK_KINDS:
            assert is_break(kind)

    def test_return_uses_stack(self):
        assert uses_return_stack(BranchKind.RETURN)

    def test_non_returns_do_not_use_stack(self):
        for kind in BREAK_KINDS - {BranchKind.RETURN}:
            assert not uses_return_stack(kind)

    def test_direct_branches_resolve_at_decode(self):
        assert target_known_at_decode(BranchKind.CONDITIONAL)
        assert target_known_at_decode(BranchKind.UNCONDITIONAL)
        assert target_known_at_decode(BranchKind.CALL)

    def test_late_target_branches(self):
        assert not target_known_at_decode(BranchKind.RETURN)
        assert not target_known_at_decode(BranchKind.INDIRECT)


class TestGeometryHelpers:
    def test_instruction_bytes_is_four(self):
        assert INSTRUCTION_BYTES == 4

    def test_align_already_aligned(self):
        assert align_instruction(0x1000) == 0x1000

    def test_align_rounds_down(self):
        assert align_instruction(0x1003) == 0x1000
        assert align_instruction(0x1007) == 0x1004

    def test_instruction_index(self):
        assert instruction_index(0) == 0
        assert instruction_index(4) == 1
        assert instruction_index(0x100) == 0x40


class TestAddressSpace:
    def test_default_is_32_bit(self):
        space = AddressSpace()
        assert space.bits == 32
        assert space.size == 1 << 32

    def test_target_bits_drops_alignment_bits(self):
        # the paper stores 30-bit targets in a 32-bit space (S7)
        assert AddressSpace(32).target_bits == 30
        assert AddressSpace(64).target_bits == 62

    def test_contains(self):
        space = AddressSpace(16)
        assert space.contains(0)
        assert space.contains(65535)
        assert not space.contains(65536)
        assert not space.contains(-1)

    def test_wrap(self):
        space = AddressSpace(16)
        assert space.wrap(65536) == 0
        assert space.wrap(65537) == 1

    @pytest.mark.parametrize("bits", [15, 65, 0, -3])
    def test_rejects_out_of_range_bits(self, bits):
        with pytest.raises(ValueError):
            AddressSpace(bits)

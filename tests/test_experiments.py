"""Smoke tests for the per-figure experiment drivers (scaled down)."""

import pytest

from repro.harness.experiments import (
    EXPERIMENTS,
    ablation_direction,
    ablation_layout,
    ablation_nls_cache,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig7_configs,
    fig8,
    johnson_comparison,
    table1,
)

SMALL = 20_000
TWO = ("li", "doduc")
TINY_GRID = ((8, 1), (16, 1))


class TestRegistry:
    def test_all_figures_registered(self):
        for name in ("table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
            assert name in EXPERIMENTS

    def test_fig7_has_ten_configs(self):
        assert len(fig7_configs()) == 10


class TestCostExperiments:
    def test_fig3_data_keys(self):
        result = fig3()
        assert "btb-128-1w" in result.data
        assert "nls-table-1024@16K" in result.data
        # the cost pairing used throughout the comparison
        ratio = result.data["nls-table-1024@16K"] / result.data["btb-128-1w"]
        assert 0.75 < ratio < 1.25

    def test_fig6_data(self):
        result = fig6()
        assert result.data["128-4w"] > result.data["128-1w"]


class TestSimulationExperiments:
    def test_table1(self):
        result = table1(programs=TWO, instructions=SMALL)
        assert set(result.data["attributes"]) == set(TWO)
        assert "li" in result.text

    def test_fig4(self):
        result = fig4(programs=TWO, instructions=SMALL, cache_grid=TINY_GRID)
        assert "nls-cache" in result.data
        assert "nls-table-1024" in result.data
        assert len(result.data["nls-table-1024"]) == 2

    def test_fig5(self):
        result = fig5(programs=TWO, instructions=SMALL, cache_grid=TINY_GRID)
        assert "btb-128-1w" in result.data
        assert "nls-1024@16K-1w" in result.data

    def test_fig7(self):
        result = fig7(programs=("li",), instructions=SMALL)
        assert "li" in result.data
        assert len(result.data["li"]) == 10

    def test_fig8(self):
        result = fig8(programs=TWO, instructions=SMALL, cache_grid=TINY_GRID)
        for cache_label, cpis in result.data.items():
            for cpi in cpis.values():
                assert cpi >= 1.0

    def test_johnson(self):
        result = johnson_comparison(programs=TWO, instructions=SMALL)
        assert len(result.data) == 3

    def test_ablation_nls_cache(self):
        result = ablation_nls_cache(programs=("li",), instructions=SMALL)
        assert len(result.data) == 6

    def test_ablation_direction(self):
        result = ablation_direction(programs=("li",), instructions=SMALL)
        assert "gshare" in result.data
        # static not-taken must be clearly worse than any dynamic PHT
        assert result.data["not-taken"] > result.data["gshare"]

    def test_ablation_layout(self):
        result = ablation_layout(programs=("li",), instructions=SMALL)
        assert set(result.data) == {"natural", "random"}

    def test_result_str(self):
        result = fig6()
        assert result.title in str(result)

"""Tests for experiment-result export (JSON/CSV/txt)."""

import csv
import json

import pytest

from repro.harness.experiments import fig3, fig6, johnson_comparison
from repro.harness.export import to_csv_rows, to_json, write_result


@pytest.fixture(scope="module")
def cost_result():
    return fig3()


class TestJSON:
    def test_round_trips(self, cost_result):
        payload = json.loads(to_json(cost_result))
        assert payload["name"] == "fig3"
        assert payload["data"]["btb-128-1w"] > 0

    def test_simulation_reports_exported_as_metrics(self):
        from repro.harness.experiments import fig7

        result = fig7(programs=("li",), instructions=20_000)
        payload = json.loads(to_json(result))
        report = payload["data"]["li"]["128 Direct BTB"]
        assert set(report) >= {"bep", "cpi", "pct_misfetched"}

    def test_handles_nested_and_scalar(self):
        payload = json.loads(to_json(fig6()))
        assert isinstance(payload["data"]["128-1w"], float)


class TestCSV:
    def test_rows_are_flat(self, cost_result):
        rows = to_csv_rows(cost_result)
        assert all(row[0] == "fig3" for row in rows)
        assert any("btb-128-1w" in row for row in rows)

    def test_values_in_last_column(self, cost_result):
        for row in to_csv_rows(cost_result):
            assert isinstance(row[-1], (int, float, str, bool, type(None)))


class TestWrite:
    def test_writes_all_formats(self, tmp_path, cost_result):
        paths = write_result(cost_result, str(tmp_path))
        assert len(paths) == 3
        names = {p.rsplit(".", 1)[1] for p in paths}
        assert names == {"txt", "json", "csv"}
        with open(paths[2]) as handle:
            assert len(list(csv.reader(handle))) > 5

    def test_format_selection(self, tmp_path, cost_result):
        paths = write_result(cost_result, str(tmp_path), formats=("json",))
        assert len(paths) == 1 and paths[0].endswith(".json")

    def test_simulation_result_writes(self, tmp_path):
        result = johnson_comparison(programs=("li",), instructions=20_000)
        paths = write_result(result, str(tmp_path))
        assert all(len(open(p).read()) > 0 for p in paths)

"""Array-kernel tests: every kernel against a brute-force oracle.

The kernels in :mod:`repro.predictors.kernels` are the load-bearing
primitives of the vectorised fast engine; each is checked here on
randomized inputs (fixed seeds) against a direct Python re-derivation
of its contract.
"""

import numpy as np
import pytest

from repro.predictors import kernels
from repro.predictors.counters import SaturatingCounter


class TestRaggedRanges:
    def test_matches_brute_force(self):
        rng = np.random.RandomState(7)
        lengths = rng.randint(1, 6, size=200)
        row_ids, offsets, first = kernels.ragged_ranges(lengths)
        expected_rows = [i for i, n in enumerate(lengths) for _ in range(n)]
        expected_offsets = [k for n in lengths for k in range(n)]
        assert row_ids.tolist() == expected_rows
        assert offsets.tolist() == expected_offsets
        assert first.tolist() == np.concatenate(
            ([0], np.cumsum(lengths)[:-1])
        ).tolist()

    def test_empty(self):
        row_ids, offsets, first = kernels.ragged_ranges(np.zeros(0, dtype=np.int64))
        assert len(row_ids) == len(offsets) == len(first) == 0


class TestPreviousSameKey:
    @pytest.mark.parametrize("seed,universe", [(1, 4), (2, 50), (3, 1)])
    def test_matches_brute_force(self, seed, universe):
        rng = np.random.RandomState(seed)
        keys = rng.randint(0, universe, size=500)
        result = kernels.previous_same_key(keys)
        last_seen = {}
        for i, key in enumerate(keys):
            assert result[i] == last_seen.get(key, -1), i
            last_seen[key] = i

    def test_empty(self):
        assert len(kernels.previous_same_key(np.zeros(0, dtype=np.int64))) == 0


class TestLastWriteLookup:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_matches_brute_force(self, seed):
        rng = np.random.RandomState(seed)
        n_writes, n_queries = 300, 400
        write_keys = rng.randint(0, 20, size=n_writes)
        write_times = np.sort(rng.randint(0, 1000, size=n_writes))
        query_keys = rng.randint(0, 25, size=n_queries)
        query_times = rng.randint(-5, 1100, size=n_queries)
        result = kernels.last_write_lookup(
            write_keys, write_times, query_keys, query_times
        )
        for q in range(n_queries):
            expected = -1
            for w in range(n_writes):
                if (
                    write_keys[w] == query_keys[q]
                    and write_times[w] <= query_times[q]
                ):
                    expected = w
            assert result[q] == expected, q

    def test_empty_writes(self):
        result = kernels.last_write_lookup(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.array([1, 2]),
            np.array([3, 4]),
        )
        assert result.tolist() == [-1, -1]

    def test_empty_queries(self):
        result = kernels.last_write_lookup(
            np.array([1]), np.array([0]),
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
        )
        assert len(result) == 0


class TestLastWriteIndex:
    def build(self, seed=21, n=400, universe=15):
        rng = np.random.RandomState(seed)
        keys = rng.randint(0, universe, size=n)
        times = np.sort(rng.randint(0, 5000, size=n))
        return keys, times, kernels.LastWriteIndex(keys, times)

    def test_query_equals_wrapper(self):
        keys, times, index = self.build()
        rng = np.random.RandomState(22)
        query_keys = rng.randint(0, 18, size=300)
        query_times = rng.randint(-10, 6000, size=300)
        assert np.array_equal(
            index.query(query_keys, query_times),
            kernels.last_write_lookup(keys, times, query_keys, query_times),
        )

    def test_resolve_roundtrips_positions(self):
        keys, times, index = self.build()
        rng = np.random.RandomState(23)
        query_keys = rng.randint(0, 18, size=200)
        query_times = rng.randint(-10, 6000, size=200)
        positions = index.positions(query_keys, query_times)
        assert np.array_equal(
            index.resolve(positions), index.query(query_keys, query_times)
        )

    def test_previous_in_key_matches_brute_force(self):
        keys, _, index = self.build(seed=24)
        result = index.previous_in_key()
        last_seen = {}
        for i, key in enumerate(keys):
            assert result[i] == last_seen.get(key, -1), i
            last_seen[key] = i

    def test_filtered_last_matches_brute_force(self):
        keys, times, index = self.build(seed=25)
        rng = np.random.RandomState(26)
        flags = rng.rand(len(keys)) < 0.4
        filtered = index.filtered_last(flags)
        rng2 = np.random.RandomState(27)
        query_keys = rng2.randint(0, 18, size=300)
        query_times = rng2.randint(-10, 6000, size=300)
        positions = index.positions(query_keys, query_times)
        for q in range(len(query_keys)):
            expected = -1
            for w in range(len(keys)):
                if (
                    flags[w]
                    and keys[w] == query_keys[q]
                    and times[w] <= query_times[q]
                ):
                    expected = w
            got = filtered[positions[q]] if positions[q] >= 0 else -1
            assert got == expected, q

    def test_shared_order_matches_fresh_sort(self):
        keys, times, _ = self.build(seed=28)
        order = np.argsort(keys, kind="stable")
        fresh = kernels.LastWriteIndex(keys, times)
        shared = kernels.LastWriteIndex(keys, times, order=order)
        query_keys = np.arange(20, dtype=np.int64)
        query_times = np.full(20, 10_000, dtype=np.int64)
        assert np.array_equal(
            fresh.query(query_keys, query_times),
            shared.query(query_keys, query_times),
        )


class TestCounterScan:
    @pytest.mark.parametrize(
        "seed,bits,initial", [(31, 2, 1), (32, 2, 0), (33, 3, 2), (34, 2, 3)]
    )
    def test_matches_saturating_counter(self, seed, bits, initial):
        rng = np.random.RandomState(seed)
        group_ids = np.sort(rng.randint(0, 10, size=600))
        takens = rng.rand(600) < 0.6
        maximum = (1 << bits) - 1
        before, after = kernels.counter_scan(group_ids, takens, initial, maximum)
        counters = {}
        for i in range(len(group_ids)):
            key = int(group_ids[i])
            if key not in counters:
                counters[key] = SaturatingCounter(bits, initial=initial)
            counter = counters[key]
            assert before[i] == counter.value, i
            counter.update(bool(takens[i]))
            assert after[i] == counter.value, i

    def test_long_single_group(self):
        # stresses the pointer-jumping loop past several doublings
        rng = np.random.RandomState(35)
        n = 3000
        takens = rng.rand(n) < 0.5
        before, after = kernels.counter_scan(
            np.zeros(n, dtype=np.int64), takens, 1, 3
        )
        counter = SaturatingCounter(2, initial=1)
        for i in range(n):
            assert before[i] == counter.value
            counter.update(bool(takens[i]))
            assert after[i] == counter.value

    def test_empty(self):
        before, after = kernels.counter_scan(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool), 1, 3
        )
        assert len(before) == len(after) == 0


class TestGshareHistories:
    @pytest.mark.parametrize("bits", [1, 4, 12])
    def test_matches_shift_register(self, bits):
        rng = np.random.RandomState(41)
        n = 500
        takens = (rng.rand(n) < 0.55).astype(np.int64)
        # epoch boundaries reset the register
        boundaries = np.sort(rng.choice(np.arange(1, n), size=6, replace=False))
        segment_first = np.zeros(n, dtype=np.int64)
        for b in boundaries:
            segment_first[b:] = b
        result = kernels.gshare_histories(takens, segment_first, bits)
        mask = (1 << bits) - 1
        register = 0
        for i in range(n):
            if i in set(boundaries.tolist()):
                register = 0
            assert result[i] == register, i
            register = ((register << 1) | int(takens[i])) & mask

    def test_empty(self):
        assert len(
            kernels.gshare_histories(
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 12
            )
        ) == 0


class TestSegmentStarts:
    def test_matches_brute_force(self):
        rng = np.random.RandomState(51)
        group_ids = np.sort(rng.randint(0, 12, size=300))
        result = kernels.segment_starts(group_ids)
        firsts = {}
        for i, g in enumerate(group_ids):
            firsts.setdefault(int(g), i)
            assert result[i] == firsts[int(g)]

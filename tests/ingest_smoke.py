#!/usr/bin/env python
"""CI ingest smoke: external traces + modern server workloads.

Exercises the docs/TRACES.md pipeline exactly as a user would and
asserts the three guarantees the ingest layer advertises:

1. **format convergence** — every committed fixture variant
   (``demo.cbp``, ``demo.cbp.gz``, ``demo.bt``, ``demo.bt.xz``)
   ingests through ``python -m repro.harness ingest`` to the *same*
   ``external:<sha256>`` trace key;
2. **engine equivalence** — a four-cell sweep (the ``replay`` roster)
   over the ingested trace produces byte-identical checkpoint
   serialisations under the reference and fast engines;
3. **modern-workload attribution** — the ``server-frontend`` /
   ``server-leaf`` profiles put the majority of their penalty mass on
   frontend-capacity causes (``btb-miss`` + ``nls-displaced``) under
   the paper-scale ``btb-256-4w`` configuration, with ``btb-miss``
   the single largest cause.

Run from the repository root (the CI ``ingest-smoke`` job does
exactly this)::

    PYTHONPATH=src python tests/ingest_smoke.py

Artifacts (ingest keys, equivalence table, per-profile attribution
shares) land in ``./ingest-artifacts`` (override with
``INGEST_SMOKE_DIR``) so CI can upload them.
"""

import dataclasses
import json
import os
import re
import shutil
import subprocess
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.harness.checkpoint import report_to_dict
from repro.harness.experiments import REPLAY_ROSTER
from repro.harness.config import ArchitectureConfig
from repro.harness.runner import simulate
from repro.workloads.corpus import generate_trace
from repro.workloads.ingest import EXTERNAL_DIR_ENV_VAR, load_external

FIXTURES = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures"
)
FIXTURE_VARIANTS = ("demo.cbp", "demo.cbp.gz", "demo.bt", "demo.bt.xz")

#: trace length for the server-profile attribution cells
SERVER_INSTRUCTIONS = 150_000

#: the capacity causes the server profiles must concentrate mass on
CAPACITY_CAUSES = ("btb-miss", "nls-displaced")


def fail(message: str) -> None:
    print(f"INGEST-SMOKE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def run_cli(args, env):
    """Run ``python -m repro.harness`` and return captured stdout."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.harness", *args],
        env=env,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        fail(
            f"CLI {' '.join(args)} exited {result.returncode}:\n"
            f"{result.stdout}\n{result.stderr}"
        )
    return result.stdout


def main() -> None:
    workdir = os.path.abspath(
        os.environ.get("INGEST_SMOKE_DIR", "ingest-artifacts")
    )
    shutil.rmtree(workdir, ignore_errors=True)
    store_dir = os.path.join(workdir, "external-traces")
    os.makedirs(store_dir, exist_ok=True)

    env = dict(os.environ)
    env[EXTERNAL_DIR_ENV_VAR] = store_dir
    env.pop("REPRO_TRACE_SCALE", None)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    os.environ[EXTERNAL_DIR_ENV_VAR] = store_dir
    os.environ.pop("REPRO_TRACE_SCALE", None)

    # 1. every fixture variant must converge on one trace key
    keys = {}
    for name in FIXTURE_VARIANTS:
        out = run_cli(
            ["ingest", "--trace", os.path.join(FIXTURES, name)], env
        )
        match = re.search(r"external:[0-9a-f]{64}", out)
        if not match:
            fail(f"no trace key in ingest output for {name}:\n{out}")
        keys[name] = match.group(0)
    if len(set(keys.values())) != 1:
        fail(f"fixture variants disagree on the trace key: {keys}")
    key = keys["demo.cbp"]
    print(f"ingest-smoke: all {len(keys)} variants -> {key}")
    with open(os.path.join(workdir, "INGEST.json"), "w") as handle:
        json.dump(keys, handle, indent=2, sort_keys=True)

    # 2. replay roster: reference vs fast must serialise identically
    trace = load_external(key)
    equivalence = []
    for config_key, config in REPLAY_ROSTER:
        ref_report = simulate(config, trace)
        fast_report = simulate(
            dataclasses.replace(config, engine="fast"), trace
        )
        ref_bytes = json.dumps(report_to_dict(ref_report), sort_keys=True)
        fast_bytes = json.dumps(report_to_dict(fast_report), sort_keys=True)
        identical = ref_bytes == fast_bytes
        equivalence.append(
            {
                "config": config_key,
                "bep": round(ref_report.bep, 4),
                "identical": identical,
            }
        )
        if not identical:
            fail(
                f"engines disagree on {config_key} over {key}:\n"
                f"reference: {ref_bytes}\nfast:      {fast_bytes}"
            )
        print(f"ingest-smoke: {config_key:<20} byte-identical engines")
    with open(
        os.path.join(workdir, "REPLAY_EQUIVALENCE.json"), "w"
    ) as handle:
        json.dump(
            {"trace": key, "cells": equivalence},
            handle,
            indent=2,
            sort_keys=True,
        )

    # 2b. the documented CLI sweep path over a raw trace file
    out = run_cli(
        [
            "replay",
            "--trace",
            os.path.join(FIXTURES, "demo.bt.xz"),
            "--engine",
            "fast",
        ],
        env,
    )
    if "fall-through" not in out:
        fail(f"replay table missing the roster rows:\n{out}")

    # 3. server profiles: capacity causes must carry the majority
    attribution = {}
    config = ArchitectureConfig(
        frontend="btb",
        entries=256,
        btb_assoc=4,
        cache_kb=16,
        attribution=True,
    )
    for program in ("server-frontend", "server-leaf"):
        server_trace = generate_trace(
            program, instructions=SERVER_INSTRUCTIONS
        )
        report = simulate(config, server_trace)
        causes = report.attribution["causes"]
        total = sum(causes.values()) or 1.0
        shares = {
            cause: round(value / total, 4)
            for cause, value in sorted(causes.items())
            if value
        }
        capacity = sum(shares.get(cause, 0.0) for cause in CAPACITY_CAUSES)
        top = max(causes, key=causes.get)
        attribution[program] = {
            "config": config.label(),
            "instructions": SERVER_INSTRUCTIONS,
            "shares": shares,
            "capacity_share": round(capacity, 4),
            "top_cause": top,
        }
        if top not in CAPACITY_CAUSES:
            fail(
                f"{program}: top cause is {top!r}, expected a capacity "
                f"cause; shares: {shares}"
            )
        if capacity < 0.45:
            fail(
                f"{program}: capacity share {capacity:.3f} < 0.45; "
                f"shares: {shares}"
            )
        print(
            f"ingest-smoke: {program:<16} capacity share "
            f"{capacity:.3f} (top cause: {top})"
        )
    with open(
        os.path.join(workdir, "ATTRIBUTION_SERVER.json"), "w"
    ) as handle:
        json.dump(attribution, handle, indent=2, sort_keys=True)

    print(f"ingest-smoke: OK (artifacts in {workdir})")


if __name__ == "__main__":
    main()

"""Engine micro-tests for tag-less type-field aliasing.

A small NLS-table makes two branches share a slot; the slot's type
field then steers the *wrong* prediction mechanism, and the engine
must classify the damage per docs/ACCOUNTING.md.
"""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.core.nls_table import NLSTable
from repro.fetch.engine import FetchEngine
from repro.fetch.frontends import NLSTableFrontEnd
from repro.isa.branches import BranchKind
from repro.predictors.static_ import AlwaysNotTakenPredictor, AlwaysTakenPredictor
from repro.workloads.trace import Trace

C = BranchKind.CONDITIONAL
U = BranchKind.UNCONDITIONAL
RET = BranchKind.RETURN
CALL = BranchKind.CALL
IND = BranchKind.INDIRECT

#: NLS-table span with 64 entries: branches 256 bytes apart share a slot
SLOT_SPAN = 64 * 4


def build(direction):
    cache = InstructionCache(CacheGeometry(8 * 1024, 32, 1))
    table = NLSTable(64, cache.geometry)
    engine = FetchEngine(
        cache, NLSTableFrontEnd(table, cache), direction_predictor=direction
    )
    return engine, table


class TestConditionalReadsOtherTypedAlias:
    def trace(self):
        """U (at a) trains the slot with type OTHER; the conditional at
        a+SLOT_SPAN reads that alias."""
        a = 0x1004
        cond = a + SLOT_SPAN
        t = 0x4000
        trace = Trace("alias")
        # train the slot: unconditional at a -> t, then return path to cond
        trace.append(a, 1, U, True, t)
        trace.append(t, 1, U, True, cond)
        # the aliasing conditional executes NOT taken
        trace.append(cond, 1, C, False, 0x5000)
        trace.append(cond + 4, 1, U, True, a)
        # round 2: slot now holds the conditional's own type; retrain
        trace.append(a, 1, U, True, t)
        trace.append(t, 1, U, True, cond)
        trace.append(cond, 1, C, False, 0x5000)
        trace.append(cond + 4, 1, U, True, a)
        trace.validate()
        return trace

    def test_not_taken_with_other_alias_is_misfetch(self):
        engine, table = build(AlwaysNotTakenPredictor())
        report = engine.run(self.trace())
        executed, misfetched, mispredicted = report.by_kind[C]
        assert executed == 2
        # both executions read an OTHER-typed alias (the U at `a`
        # rewrites the slot every round): fetch followed the pointer,
        # decode repaired to the fall-through -> misfetch, not mispredict
        assert misfetched == 2
        assert mispredicted == 0


class TestUnconditionalReadsConditionalTypedAlias:
    def trace(self):
        """A conditional trains the slot; the unconditional at the
        aliasing pc then consults the PHT."""
        cond = 0x1004
        uncond = cond + SLOT_SPAN
        trace = Trace("alias")
        # train slot with a TAKEN conditional pointing at `uncond`
        trace.append(cond, 1, C, True, uncond)
        # the aliasing unconditional jumps to... the same target the
        # slot holds? No: its real target is elsewhere
        trace.append(uncond, 1, U, True, 0x4000)
        trace.append(0x4000, 1, U, True, cond)
        trace.append(cond, 1, C, True, uncond)
        trace.append(uncond, 1, U, True, 0x4000)
        trace.append(0x4000, 1, U, True, cond)
        trace.validate()
        return trace

    def test_pht_not_taken_forces_misfetch(self):
        # with an always-not-taken PHT the conditional-typed alias
        # fetches the fall-through: every execution misfetches
        engine, table = build(AlwaysNotTakenPredictor())
        report = engine.run(self.trace())
        executed, misfetched, mispredicted = report.by_kind[U]
        # the unconditional at `uncond` reads its own correct entry on
        # round 2 (it rewrote the slot after round 1); round 1 is the
        # aliased one.  0x4000's branch trains normally.
        assert misfetched >= 1
        assert mispredicted == 0

    def test_mispredicts_never_charged_to_unconditionals(self):
        engine, table = build(AlwaysTakenPredictor())
        report = engine.run(self.trace())
        assert report.by_kind[U][2] == 0


class TestReturnTypedAliasOnCall:
    def test_call_reading_return_alias_misfetches(self):
        # slot trained by a return; the aliasing call must misfetch
        # (stack top fetched instead of the callee) but never mispredict
        ret_pc = 0x1004
        call_pc = ret_pc + SLOT_SPAN
        trace = Trace("alias")
        # set up: call A -> F; F returns (training slot type RETURN)
        trace.append(0x2000, 1, CALL, True, ret_pc - 0x100)
        # F body runs up to the return at ret_pc
        trace.append(ret_pc - 0x100, 65, RET, True, 0x2004)
        # now the aliasing call executes
        trace.append(0x2004, 1, U, True, call_pc)
        trace.append(call_pc, 1, CALL, True, 0x5000)
        trace.append(0x5000, 1, RET, True, call_pc + 4)
        trace.append(call_pc + 4, 1)
        trace.validate()
        engine, table = build(AlwaysNotTakenPredictor())
        report = engine.run(trace)
        executed, misfetched, mispredicted = report.by_kind[CALL]
        assert executed == 2
        assert mispredicted == 0
        assert misfetched == 2  # both cold/aliased


class TestIndirectThroughConditionalAlias:
    def test_accidentally_right_counts_correct(self):
        cond = 0x1004
        ind = cond + SLOT_SPAN
        target = 0x4000
        trace = Trace("alias")
        # conditional trains the slot with a pointer to `target`
        trace.append(cond, 1, C, True, target)
        trace.append(target, 1, U, True, ind)
        # the aliasing indirect jump goes to the very same target
        trace.append(ind, 1, IND, True, target)
        trace.append(target, 1, U, True, 0x6000)
        trace.append(0x6000, 1)
        trace.validate()
        engine, table = build(AlwaysTakenPredictor())
        report = engine.run(trace)
        executed, misfetched, mispredicted = report.by_kind[IND]
        assert executed == 1
        # PHT (always-taken) follows the aliased pointer, which happens
        # to resolve to the right place: correct by accident
        assert misfetched == 0 and mispredicted == 0

    def test_wrong_alias_target_is_mispredict(self):
        cond = 0x1004
        ind = cond + SLOT_SPAN
        trace = Trace("alias")
        trace.append(cond, 1, C, True, 0x4000)
        trace.append(0x4000, 1, U, True, ind)
        trace.append(ind, 1, IND, True, 0x5000)  # alias points at 0x4000
        trace.append(0x5000, 1)
        trace.validate()
        engine, table = build(AlwaysTakenPredictor())
        report = engine.run(trace)
        executed, misfetched, mispredicted = report.by_kind[IND]
        assert mispredicted == 1  # indirects never misfetch
        assert misfetched == 0

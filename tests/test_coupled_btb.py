"""Tests for the coupled-BTB front-end and its experiments."""

import pytest

from repro.fetch.engine import FetchEngine
from repro.fetch.frontends import CoupledBTBFrontEnd
from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.harness.config import ArchitectureConfig
from repro.harness.experiments import coupled_vs_decoupled, way_prediction
from repro.harness.runner import simulate
from repro.isa.branches import BranchKind
from repro.predictors.btb import CoupledBTB
from repro.workloads.trace import Trace

C = BranchKind.CONDITIONAL
U = BranchKind.UNCONDITIONAL


def build_engine(entries=128):
    cache = InstructionCache(CacheGeometry(8 * 1024, 32, 1))
    return FetchEngine(cache, CoupledBTBFrontEnd(CoupledBTB(entries, 1)))


class TestCoupledFrontEnd:
    def test_flags(self):
        frontend = CoupledBTBFrontEnd(CoupledBTB(128, 1))
        assert frontend.implicit_direction is True
        assert frontend.uses_ras is True

    def test_miss_implies_static_not_taken(self):
        frontend = CoupledBTBFrontEnd(CoupledBTB(128, 1))
        mech, handle = frontend.predict(0x1000, 0)
        assert mech is None
        assert frontend.implied_taken(handle, 0x1004) is False

    def test_counter_drives_direction(self):
        frontend = CoupledBTBFrontEnd(CoupledBTB(128, 1))
        frontend.update(0x1000, C, True, 0x2000, 0x1004, 0)
        mech, handle = frontend.predict(0x1000, 0)
        assert frontend.implied_taken(handle, 0x1004) is True
        frontend.update(0x1000, C, False, 0x2000, 0x1004, 0)
        frontend.update(0x1000, C, False, 0x2000, 0x1004, 0)
        mech, handle = frontend.predict(0x1000, 0)
        assert frontend.implied_taken(handle, 0x1004) is False

    def test_resident_taken_branch_predicted(self):
        trace = Trace("loop")
        for _ in range(6):
            trace.append(0x1000, 8, C, True, 0x1000)
        trace.validate()
        report = build_engine().run(trace)
        executed, misfetched, mispredicted = report.by_kind[C]
        # the first execution mispredicts (no entry -> static not-taken),
        # afterwards the in-entry counter predicts taken
        assert executed == 6
        assert mispredicted == 1
        assert misfetched == 0

    def test_missing_branch_has_no_dynamic_prediction(self):
        # a taken conditional that never re-enters the BTB (conflict
        # thrashing) mispredicts every time under the coupled design
        trace = Trace("thrash")
        btb_span = 128 * 4
        a, b = 0x1000, 0x1000 + btb_span  # same BTB set (direct mapped)
        for _ in range(4):
            trace.append(a, 1, C, True, b)
            trace.append(b, 1, C, True, a)
        trace.validate()
        report = build_engine().run(trace)
        executed, misfetched, mispredicted = report.by_kind[C]
        assert executed == 8
        assert mispredicted == 8  # evicted before every re-execution

    def test_returns_still_use_the_stack(self):
        trace = Trace("callret")
        for _ in range(4):
            trace.append(0x1000, 4, BranchKind.CALL, True, 0x2020)
            trace.append(0x2020, 4, BranchKind.RETURN, True, 0x1010)
            trace.append(0x1010, 4, U, True, 0x1000)
        trace.validate()
        report = build_engine().run(trace)
        executed, misfetched, mispredicted = report.by_kind[BranchKind.RETURN]
        assert mispredicted == 0  # the stack is live in the coupled design


class TestCoupledExperiments:
    def test_config_builds(self):
        report = simulate(
            ArchitectureConfig(frontend="coupled-btb", entries=128),
            "li",
            instructions=20_000,
        )
        assert report.n_breaks > 0

    def test_decoupled_beats_coupled_at_128(self):
        result = coupled_vs_decoupled(programs=("gcc",), instructions=60_000)
        assert (
            result.data["decoupled 128 BTB + gshare"]
            < result.data["coupled 128 BTB (2-bit in entry)"]
        )


class TestWayPrediction:
    def test_accuracy_is_high_and_bounded(self):
        result = way_prediction(programs=("li",), instructions=40_000)
        accuracy = result.data["li"]
        assert 0.5 < accuracy <= 1.0

    def test_text_mentions_programs(self):
        result = way_prediction(programs=("li",), instructions=20_000)
        assert "li" in result.text

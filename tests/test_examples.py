"""Smoke tests: every shipped example must run end-to-end.

Examples are executed as subprocesses with tiny instruction budgets so
the whole file stays under a minute.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "li", "30000")
        assert result.returncode == 0, result.stderr
        assert "BEP" in result.stdout
        assert "RBE" in result.stdout

    def test_cache_sensitivity(self):
        result = run_example("cache_sensitivity.py", "li", "30000")
        assert result.returncode == 0, result.stderr
        assert "I-miss" in result.stdout

    def test_custom_workload(self):
        result = run_example("custom_workload.py", "30000")
        assert result.returncode == 0, result.stderr
        assert "dispatcher" in result.stdout

    def test_custom_frontend(self):
        result = run_example("custom_frontend.py", "20000")
        assert result.returncode == 0, result.stderr
        assert "alias rate" in result.stdout

    def test_pipeline_depth_study(self):
        result = run_example("pipeline_depth_study.py", "li", "30000")
        assert result.returncode == 0, result.stderr
        assert "IPC" in result.stdout

    def test_every_example_is_covered(self):
        covered = {
            "quickstart.py",
            "cache_sensitivity.py",
            "custom_workload.py",
            "custom_frontend.py",
            "pipeline_depth_study.py",
        }
        on_disk = {p.name for p in EXAMPLES.glob("*.py")}
        assert on_disk == covered

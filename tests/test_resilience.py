"""Resilient run-plan execution (DESIGN.md §12).

Covers the checkpoint journal (append / replay / torn tails /
``--resume``), the retry taxonomy (transient vs deterministic
failures, backoff, per-cell deadlines), pool supervision (killed
workers, rebuilds), quarantine + ``FAILURES.json``, the deterministic
fault-injection harness in :mod:`repro.testing.faults`, the corpus's
checksum-validated on-disk trace cache, and the CLI's resilience
flags and argument validation.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.harness.checkpoint import (
    FAILURES_NAME,
    CheckpointJournal,
    cell_key,
    failures_payload,
    report_from_dict,
    report_to_dict,
)
from repro.harness.cli import main as cli_main
from repro.harness.config import ArchitectureConfig
from repro.harness.export import write_failures
from repro.harness.runner import (
    CellExecutionError,
    CellTimeoutError,
    ExecutionPolicy,
    RunPlan,
    RunRequest,
    _cell_error,
    quarantined_report,
)
from repro.telemetry.core import Registry, use
from repro.testing import faults as faults_module
from repro.testing.faults import (
    FAULTS_ENV_VAR,
    FaultInjectedError,
    FaultPlan,
    FaultSpec,
    load_plan,
    plan_summary,
    write_plan,
)
from repro.workloads.corpus import (
    CACHE_DIR_ENV_VAR,
    clear_cache,
    generate_trace,
    trace_key,
)

#: trace length for the resilience tests — tiny, retries multiply runs
TINY = 2_000

LABEL_BTB = "btb-32e-1w @ 8K/1w"


def _request(program: str = "li", frontend: str = "btb") -> RunRequest:
    return RunRequest(
        config=ArchitectureConfig(frontend=frontend, entries=32, cache_kb=8),
        program=program,
        instructions=TINY,
    )


def _plan_path(tmp_path, specs) -> str:
    return write_plan(str(tmp_path / "faults.json"), specs)


@pytest.fixture(autouse=True)
def _clean_corpus():
    clear_cache()
    yield
    clear_cache()


# ---------------------------------------------------------------------------
# the fault-injection harness itself
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_plan_round_trips_through_json(self, tmp_path):
        specs = (
            FaultSpec(action="raise", program="li", times=2),
            FaultSpec(action="hang", config="btb-*", hang_s=1.5),
        )
        path = _plan_path(tmp_path, specs)
        plan = load_plan(path)
        assert plan.specs == specs
        assert os.path.isdir(plan.spool)

    def test_budget_claims_are_exclusive_and_durable(self, tmp_path):
        plan = load_plan(
            _plan_path(tmp_path, [FaultSpec(action="raise", times=2)])
        )
        assert plan.claim(0) is True
        assert plan.fired(0) == 1
        assert plan.claim(0) is True
        assert plan.claim(0) is False  # budget of 2 is spent
        assert plan.fired(0) == 2
        # a second loader (another process, conceptually) sees the
        # same spool state — claims survive the claimant dying
        again = load_plan(plan.path)
        assert again.claim(0) is False
        assert plan_summary(again)[0]["fired"] == 2

    def test_fire_respects_site_and_patterns(self, tmp_path, monkeypatch):
        path = _plan_path(
            tmp_path,
            [FaultSpec(action="raise", program="li", config="btb-*", times=5)],
        )
        monkeypatch.setenv(FAULTS_ENV_VAR, path)
        # wrong site / program / config: no-ops, no budget spent
        faults_module.fire("trace-file", program="li", config="btb-32e")
        faults_module.fire("cell", program="gcc", config="btb-32e")
        faults_module.fire("cell", program="li", config="nls-64e")
        assert load_plan(path).fired(0) == 0
        with pytest.raises(FaultInjectedError):
            faults_module.fire("cell", program="li", config="btb-32e")
        assert load_plan(path).fired(0) == 1

    def test_unarmed_fire_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        faults_module.fire("cell", program="li", config="anything")

    def test_corrupt_file_is_deterministic(self, tmp_path):
        victim = tmp_path / "blob.bin"
        payload = bytes(range(256)) * 16
        victim.write_bytes(payload)
        faults_module.corrupt_file(str(victim), seed=7)
        first = victim.read_bytes()
        victim.write_bytes(payload)
        faults_module.corrupt_file(str(victim), seed=7)
        assert victim.read_bytes() == first
        assert first != payload

    def test_invalid_specs_are_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(action="explode")
        with pytest.raises(ValueError):
            FaultSpec(action="raise", site="nowhere")
        with pytest.raises(ValueError):
            FaultSpec(action="raise", times=0)


# ---------------------------------------------------------------------------
# retry taxonomy (serial backend, which shares the supervisor with process)
# ---------------------------------------------------------------------------


class TestRetries:
    def test_flaky_cell_recovers_byte_identically(self, tmp_path, monkeypatch):
        request = _request()
        clean = RunPlan([request]).execute()[request]
        clear_cache()
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            _plan_path(tmp_path, [FaultSpec(action="raise", times=1)]),
        )
        registry = Registry(enabled=True)
        plan = RunPlan([request])
        with use(registry):
            reports = plan.execute(
                policy=ExecutionPolicy(max_retries=2, backoff_base_s=0.001)
            )
        assert not plan.failures
        assert reports[request] == clean
        assert registry.counter("runner.retries").value == 1

    def test_deterministic_failure_quarantines_on_repeat(
        self, tmp_path, monkeypatch
    ):
        # budget of 5 with a stable message: the second identical
        # failure marks the cell deterministic — long before the
        # max_retries=5 budget is exhausted
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            _plan_path(tmp_path, [FaultSpec(action="raise", times=5)]),
        )
        request = _request()
        registry = Registry(enabled=True)
        plan = RunPlan([request])
        with use(registry):
            reports = plan.execute(
                policy=ExecutionPolicy(max_retries=5, backoff_base_s=0.001)
            )
        assert reports == {}
        failure = plan.failures[request]
        assert failure.kind == "deterministic"
        assert failure.attempts == 2
        assert failure.error_type == "FaultInjectedError"
        assert registry.counter("runner.quarantined").value == 1

    def test_exhausted_retries_quarantine(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            _plan_path(tmp_path, [FaultSpec(action="raise", times=1)]),
        )
        request = _request()
        plan = RunPlan([request])
        plan.execute(policy=ExecutionPolicy(max_retries=0))
        failure = plan.failures[request]
        assert failure.kind == "exhausted"
        assert failure.attempts == 1

    def test_hung_cell_trips_deadline_then_recovers(
        self, tmp_path, monkeypatch
    ):
        request = _request()
        clean = RunPlan([request]).execute()[request]
        clear_cache()
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            _plan_path(
                tmp_path, [FaultSpec(action="hang", times=1, hang_s=30.0)]
            ),
        )
        registry = Registry(enabled=True)
        plan = RunPlan([request])
        with use(registry):
            reports = plan.execute(
                policy=ExecutionPolicy(
                    max_retries=2, cell_timeout=0.2, backoff_base_s=0.001
                )
            )
        assert not plan.failures
        assert reports[request] == clean
        assert registry.counter("runner.cell_timeouts").value == 1
        assert registry.counter("runner.retries").value == 1

    def test_quarantine_does_not_abort_the_sweep(self, tmp_path, monkeypatch):
        poisoned = _request(program="li")
        healthy = _request(program="espresso")
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            _plan_path(
                tmp_path,
                [FaultSpec(action="raise", program="li", times=4)],
            ),
        )
        plan = RunPlan([poisoned, healthy])
        reports = plan.execute(
            policy=ExecutionPolicy(max_retries=1, backoff_base_s=0.001)
        )
        assert poisoned in plan.failures
        assert healthy in reports and healthy not in plan.failures

    def test_backoff_is_deterministic_and_bounded(self):
        policy = ExecutionPolicy(backoff_base_s=0.05, backoff_cap_s=0.4)
        delays = [policy.backoff_delay("abc", n) for n in (1, 2, 3, 10)]
        assert delays == [policy.backoff_delay("abc", n) for n in (1, 2, 3, 10)]
        assert all(d <= 0.4 * 1.25 for d in delays)
        assert delays[0] < delays[1] < delays[2]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ExecutionPolicy(cell_timeout=0.0)
        with pytest.raises(ValueError):
            ExecutionPolicy(resume=True)


# ---------------------------------------------------------------------------
# process backend: killed workers, pool rebuilds
# ---------------------------------------------------------------------------


class TestPoolSupervision:
    def test_killed_worker_is_retried_byte_identically(
        self, tmp_path, monkeypatch
    ):
        requests = [_request("li"), _request("espresso")]
        clean = RunPlan(requests).execute()
        clear_cache()
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            _plan_path(
                tmp_path,
                [FaultSpec(action="kill", program="li", times=1)],
            ),
        )
        registry = Registry(enabled=True)
        plan = RunPlan(requests)
        with use(registry):
            reports = plan.execute(
                backend="process",
                jobs=2,
                policy=ExecutionPolicy(max_retries=3, backoff_base_s=0.001),
            )
        assert not plan.failures
        assert {k: reports[k] for k in requests} == clean
        assert registry.counter("runner.pool_rebuilds").value >= 1
        assert registry.counter("runner.retries").value >= 1

    def test_process_strict_mode_still_names_the_cell(self):
        bad = RunRequest(
            config=ArchitectureConfig(frontend="btb", entries=32, cache_kb=8),
            program="li",
            instructions=TINY,
            warmup=1.5,  # engine rejects warmup outside [0, 1)
        )
        plan = RunPlan([bad])
        with pytest.raises(CellExecutionError) as excinfo:
            plan.execute(backend="process", jobs=2)
        assert "program='li'" in str(excinfo.value)

    def test_process_quarantine_matches_serial(self, tmp_path, monkeypatch):
        # identical resilience semantics across backends: the same
        # deterministic fault quarantines the same cell either way
        request = _request()
        for backend, spool in (("serial", "a"), ("process", "b")):
            clear_cache()
            monkeypatch.setenv(
                FAULTS_ENV_VAR,
                write_plan(
                    str(tmp_path / f"faults-{spool}.json"),
                    [FaultSpec(action="raise", times=4)],
                ),
            )
            plan = RunPlan([request])
            plan.execute(
                backend=backend,
                jobs=2,
                policy=ExecutionPolicy(max_retries=3, backoff_base_s=0.001),
            )
            failure = plan.failures[request]
            assert failure.kind == "deterministic"
            assert failure.error_type == "FaultInjectedError"


# ---------------------------------------------------------------------------
# checkpoint journal + resume
# ---------------------------------------------------------------------------


class TestCheckpoint:
    def test_report_round_trips_through_json(self):
        request = _request()
        report = RunPlan([request]).execute()[request]
        clone = report_from_dict(json.loads(json.dumps(report_to_dict(report))))
        assert clone == report
        assert clone.by_kind == report.by_kind
        assert clone.meta.config_label == report.meta.config_label
        assert clone.manifest.trace_key == report.manifest.trace_key

    def test_journal_replays_completed_cells(self, tmp_path):
        request = _request()
        report = RunPlan([request]).execute()[request]
        journal = CheckpointJournal(str(tmp_path))
        journal.append(request, report)
        journal.close()
        replayed = CheckpointJournal(str(tmp_path)).replay([request])
        assert replayed[request] == report

    def test_journal_tolerates_torn_tail(self, tmp_path):
        request = _request()
        report = RunPlan([request]).execute()[request]
        journal = CheckpointJournal(str(tmp_path))
        journal.append(request, report)
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro-checkpoint/v1", "cell": "tor')
        fresh = CheckpointJournal(str(tmp_path))
        assert fresh.replay([request])[request] == report
        # compaction drops the torn tail via atomic rewrite
        assert fresh.compact() == 1
        lines = open(journal.path, encoding="utf-8").read().splitlines()
        assert len(lines) == 1

    def test_trace_scale_change_invalidates_entries(
        self, tmp_path, monkeypatch
    ):
        request = _request()
        report = RunPlan([request]).execute()[request]
        journal = CheckpointJournal(str(tmp_path))
        journal.append(request, report)
        journal.close()
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.5")
        assert CheckpointJournal(str(tmp_path)).replay([request]) == {}

    def test_resume_recomputes_nothing(self, tmp_path):
        requests = [_request("li"), _request("espresso")]
        directory = str(tmp_path / "ckpt")
        first = RunPlan(requests)
        reports = first.execute(policy=ExecutionPolicy(checkpoint_dir=directory))
        registry = Registry(enabled=True)
        second = RunPlan(requests)
        with use(registry):
            resumed = second.execute(
                policy=ExecutionPolicy(checkpoint_dir=directory, resume=True)
            )
        assert resumed == reports
        # the acceptance criterion, via telemetry: zero cells executed
        assert registry.counter("runner.cells").value == 0
        assert registry.counter("runner.resumed_cells").value == len(requests)

    def test_resume_runs_only_the_missing_cells(self, tmp_path):
        done, missing = _request("li"), _request("espresso")
        directory = str(tmp_path / "ckpt")
        RunPlan([done]).execute(
            policy=ExecutionPolicy(checkpoint_dir=directory)
        )
        registry = Registry(enabled=True)
        plan = RunPlan([done, missing])
        with use(registry):
            reports = plan.execute(
                policy=ExecutionPolicy(checkpoint_dir=directory, resume=True)
            )
        assert set(reports) == {done, missing}
        assert registry.counter("runner.cells").value == 1
        assert registry.counter("runner.resumed_cells").value == 1
        # the journal now holds both cells for the next resume
        journal = CheckpointJournal(directory)
        assert set(journal.replay([done, missing])) == {done, missing}


# ---------------------------------------------------------------------------
# failure manifest + error pickling + placeholders
# ---------------------------------------------------------------------------


class TestFailureArtifacts:
    def _failures(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            _plan_path(tmp_path, [FaultSpec(action="raise", times=4)]),
        )
        plan = RunPlan([_request()])
        plan.execute(policy=ExecutionPolicy(max_retries=3, backoff_base_s=0.001))
        return plan.failures

    def test_failures_json_names_the_cell(self, tmp_path, monkeypatch):
        failures = self._failures(tmp_path, monkeypatch)
        out = str(tmp_path / "artifacts")
        path = write_failures(out, failures.values())
        assert os.path.basename(path) == FAILURES_NAME
        payload = json.load(open(path, encoding="utf-8"))
        assert payload["count"] == 1
        (entry,) = payload["quarantined"]
        assert entry["program"] == "li"
        assert entry["config"] == LABEL_BTB
        assert entry["kind"] == "deterministic"
        assert entry["error_type"] == "FaultInjectedError"
        assert "FaultInjectedError" in entry["traceback"]
        assert entry["cell"] == cell_key(next(iter(failures)))

    def test_failures_payload_is_json_clean(self, tmp_path, monkeypatch):
        failures = self._failures(tmp_path, monkeypatch)
        json.dumps(failures_payload(failures.values()))

    def test_cell_execution_error_pickles_with_context(self):
        request = _request()
        try:
            raise ValueError("teeth")
        except ValueError as exc:
            error = _cell_error(request, exc)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, CellExecutionError)
        assert str(clone) == str(error)
        assert clone.cell == LABEL_BTB
        assert clone.program == "li"
        assert clone.error_type == "ValueError"
        assert "teeth" in clone.traceback_text
        assert "ValueError" in clone.traceback_text

    def test_quarantined_placeholder_is_rendered_safely(self):
        request = _request()
        report = quarantined_report(request)
        assert report.meta.backend == "quarantined"
        assert report.bep == 0.0
        assert report.cpi == 0.0
        assert report.pct_misfetched == 0.0
        assert report.label == LABEL_BTB


# ---------------------------------------------------------------------------
# corpus: checksum-validated on-disk trace cache
# ---------------------------------------------------------------------------


class TestTraceFileCache:
    def _report(self):
        request = _request()
        return RunPlan([request]).execute()[request]

    def test_store_and_reload(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        registry = Registry(enabled=True)
        with use(registry):
            trace = generate_trace("li", instructions=TINY)
            clear_cache()  # drop the in-memory tier; disk must serve it
            again = generate_trace("li", instructions=TINY)
        assert registry.counter("corpus.trace_file_stores").value == 1
        assert registry.counter("corpus.trace_file_hits").value == 1
        assert again.n_instructions == trace.n_instructions
        assert list(again.starts) == list(trace.starts)

    def _cached_path(self, tmp_path):
        (path,) = [
            os.path.join(tmp_path, name)
            for name in os.listdir(tmp_path)
            if name.endswith(".npz")
        ]
        return path

    @pytest.mark.parametrize("damage", ["flip", "truncate"])
    def test_corruption_is_detected_and_regenerated(
        self, tmp_path, monkeypatch, damage
    ):
        clean = self._report()
        clear_cache()
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        registry = Registry(enabled=True)
        with use(registry):
            generate_trace("li", instructions=TINY)
            path = self._cached_path(tmp_path)
            if damage == "flip":
                faults_module.corrupt_file(path, seed=3)
            else:
                with open(path, "r+b") as handle:
                    handle.truncate(os.path.getsize(path) // 3)
            clear_cache()
            generate_trace("li", instructions=TINY)
            assert registry.counter("corpus.trace_file_corrupt").value == 1
            assert registry.counter("corpus.trace_file_evictions").value == 1
            # the regenerated trace was re-stored with a fresh checksum
            assert registry.counter("corpus.trace_file_stores").value == 2
        clear_cache()
        monkeypatch.delenv(CACHE_DIR_ENV_VAR)
        assert self._report() == clean

    def test_corrupt_fault_site_hits_the_cache_path(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "cache"))
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            _plan_path(
                tmp_path,
                [FaultSpec(action="corrupt", site="trace-file", times=1)],
            ),
        )
        registry = Registry(enabled=True)
        with use(registry):
            generate_trace("li", instructions=TINY)
            clear_cache()
            generate_trace("li", instructions=TINY)  # fault corrupts here
        assert registry.counter("corpus.trace_file_corrupt").value == 1
        assert registry.counter("corpus.trace_file_stores").value == 2

    def test_missing_checksum_sidecar_counts_as_corrupt(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        registry = Registry(enabled=True)
        with use(registry):
            generate_trace("li", instructions=TINY)
            os.remove(self._cached_path(tmp_path) + ".sha256")
            clear_cache()
            generate_trace("li", instructions=TINY)
        assert registry.counter("corpus.trace_file_corrupt").value == 1

    def test_disk_tier_off_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        registry = Registry(enabled=True)
        with use(registry):
            generate_trace("li", instructions=TINY)
        assert registry.counter("corpus.trace_file_stores").value == 0
        assert os.listdir(tmp_path) == []


# ---------------------------------------------------------------------------
# CLI: validation, resilience flags, quarantine exit
# ---------------------------------------------------------------------------


class TestCLI:
    def test_unknown_experiment_is_a_clean_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["not-an-experiment"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "table1" in err  # the valid names are listed

    @pytest.mark.parametrize("bad", ["-2", "two", "1.5"])
    def test_bad_jobs_is_a_clean_error(self, capsys, bad):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["fig3", "--jobs", bad])
        assert excinfo.value.code == 2
        assert "worker count" in capsys.readouterr().err

    def test_excess_jobs_warn_and_clamp(self, capsys, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning, match="clamping to 2"):
            assert cli_main(["fig3", "--jobs", "64"]) == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_resume_requires_checkpoint_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["fig3", "--resume"])
        assert excinfo.value.code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_missing_faults_file_is_a_clean_error(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["fig3", "--faults", str(tmp_path / "nope.json")])
        assert excinfo.value.code == 2
        assert "not found" in capsys.readouterr().err

    def test_quarantine_exits_nonzero_with_manifest(self, capsys, tmp_path):
        checkpoint = tmp_path / "ckpt"
        plan = _plan_path(
            tmp_path,
            [FaultSpec(action="raise", program="li", times=2)],
        )
        status = cli_main(
            [
                "johnson",
                "--programs",
                "li",
                "--instructions",
                str(TINY),
                "--max-retries",
                "2",
                "--checkpoint-dir",
                str(checkpoint),
                "--faults",
                plan,
            ]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "QUARANTINED 1 cell" in out
        payload = json.load(open(checkpoint / FAILURES_NAME, encoding="utf-8"))
        assert payload["count"] == 1
        assert payload["quarantined"][0]["program"] == "li"
        assert payload["quarantined"][0]["kind"] == "deterministic"
        # the healthy cells were journalled for --resume
        assert (checkpoint / "journal.ndjson").exists()
        assert os.environ.get(FAULTS_ENV_VAR) is None  # disarmed on exit

    def test_resume_flag_recomputes_nothing(self, capsys, tmp_path):
        checkpoint = tmp_path / "ckpt"
        argv = [
            "johnson",
            "--programs",
            "li",
            "--instructions",
            str(TINY),
            "--checkpoint-dir",
            str(checkpoint),
        ]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        clear_cache()
        assert cli_main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        body = lambda text: [  # noqa: E731 - tiny local helper
            line
            for line in text.splitlines()
            if line and not line.startswith("[")
        ]
        assert body(first) == body(second)

"""Simulation-as-a-service: protocol, scheduler, HTTP API (docs/SERVICE.md).

Covers the wire-format validation in :mod:`repro.service.protocol`,
the sharded job scheduler's lifecycle (events, manifests, failure
containment), and the asyncio HTTP server end to end over real
sockets: submitting the full fig5 paper sweep (60 cells — the BTB
size ladder x six programs), streaming per-cell NDJSON progress, and
the acceptance invariant — resubmitting the same sweep completes with
100% store hits and **zero cells re-simulated**, proven by the dedup
counters in the job manifest.  Also the concurrent-submitter
guarantee: overlapping jobs yield byte-identical reports and pay for
each unique cell once.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.harness.config import ArchitectureConfig
from repro.harness.runner import RunPlan, RunRequest
from repro.service.jobs import Job, JobEventLog, JobState
from repro.service.protocol import (
    SERVICE_SCHEMA,
    JobSpecError,
    parse_job_spec,
    request_from_dict,
    request_to_dict,
)
from repro.service.scheduler import JobScheduler
from repro.service.store import ResultStore

#: trace length for service tests — tiny cells, the point is plumbing
TINY = 2_000

#: instruction budget for the end-to-end paper-sweep test
SWEEP_INSTRUCTIONS = 20_000


def _request(program: str = "li", entries: int = 32) -> RunRequest:
    return RunRequest(
        config=ArchitectureConfig(frontend="btb", entries=entries, cache_kb=8),
        program=program,
        instructions=TINY,
    )


def _cells_payload(requests, **extra):
    payload = {"cells": [request_to_dict(request) for request in requests]}
    payload.update(extra)
    return payload


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_request_round_trip(self):
        request = _request(entries=64)
        assert request_from_dict(request_to_dict(request)) == request

    def test_round_trip_preserves_cell_key(self):
        from repro.harness.checkpoint import cell_key

        request = _request()
        rebuilt = request_from_dict(json.loads(json.dumps(request_to_dict(request))))
        assert cell_key(rebuilt) == cell_key(request)

    @pytest.mark.parametrize(
        "payload, message",
        [
            ("nope", "must be a JSON object"),
            ({}, "exactly one of"),
            ({"experiment": "fig5", "cells": []}, "exactly one of"),
            ({"experiment": "nope"}, "unknown experiment"),
            ({"experiment": "fig5", "engine": "warp"}, "unknown engine"),
            ({"experiment": "fig5", "backend": "k8s"}, "unknown backend"),
            ({"experiment": "fig5", "jobs": -2}, "worker count"),
            ({"experiment": "fig5", "programs": []}, "non-empty list"),
            ({"experiment": "fig5", "programs": ["tex"]}, "unknown program"),
            ({"experiment": "fig5", "instructions": 0}, "positive integer"),
            ({"cells": []}, "non-empty list"),
            ({"cells": [{"program": "li"}]}, "'config' and 'program'"),
        ],
    )
    def test_bad_specs_are_rejected(self, payload, message):
        with pytest.raises(JobSpecError, match=message):
            parse_job_spec(payload)

    def test_unknown_cell_and_config_fields_are_rejected(self):
        cell = request_to_dict(_request())
        cell["surprise"] = 1
        with pytest.raises(JobSpecError, match="unknown cell field"):
            request_from_dict(cell)
        cell = request_to_dict(_request())
        cell["config"]["surprise"] = 1
        with pytest.raises(JobSpecError, match="unknown config field"):
            request_from_dict(cell)

    def test_experiment_spec_builds_plan_cells(self):
        spec = parse_job_spec(
            {
                "experiment": "fig5",
                "programs": ["li"],
                "instructions": TINY,
                "engine": "fast",
            }
        )
        assert spec.kind == "experiment" and spec.name == "fig5"
        assert len(spec.cells) == 10 and spec.finish is not None
        assert all(cell.config.engine == "fast" for cell in spec.cells)

    def test_cells_spec_applies_engine(self):
        spec = parse_job_spec(_cells_payload([_request()], engine="fast"))
        assert spec.kind == "cells" and spec.finish is None
        assert spec.cells[0].config.engine == "fast"

    def test_jobs_resolver_matches_cli(self):
        """The service validates worker counts through the same shared
        resolver as the CLI's ``--jobs`` flag."""
        spec = parse_job_spec(_cells_payload([_request()], jobs=1))
        assert spec.jobs == 1
        with pytest.raises(JobSpecError, match="integer worker count"):
            parse_job_spec(_cells_payload([_request()], jobs="many"))


# ---------------------------------------------------------------------------
# jobs + scheduler (no HTTP)
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_append_stamps_and_wakes_waiters(self):
        log = JobEventLog()
        assert not log.wait_beyond(0, timeout=0.01)
        record = log.append("cell", cell="abc")
        assert record["schema"] == SERVICE_SCHEMA and record["seq"] == 0
        assert log.wait_beyond(0, timeout=0.01)
        assert [event["event"] for event in log.events_since(0)] == ["cell"]
        assert log.events_since(1) == []


def _wait(job: Job, timeout: float = 30.0) -> None:
    offset = 0
    while not job.done:
        job.log.wait_beyond(offset, timeout=0.1)
        offset = len(job.log)
        timeout -= 0.1
        assert timeout > 0, f"job {job.id} did not finish"


@pytest.fixture
def scheduler(tmp_path):
    store = ResultStore(str(tmp_path / "store.sqlite"))
    scheduler = JobScheduler(store, concurrency=2)
    scheduler.start()
    yield scheduler
    scheduler.stop()
    store.close()


class TestScheduler:
    def test_job_runs_to_completion(self, scheduler):
        requests = [_request(entries=entries) for entries in (16, 32)]
        job = scheduler.submit(_cells_payload(requests, name="pair"))
        _wait(job)
        assert job.state is JobState.COMPLETED
        assert job.result is not None and job.manifest is not None
        counters = job.manifest["counters"]
        assert counters["cells_unique"] == 2
        assert counters["store_hits"] == 0
        assert counters["cells_computed"] == 2
        assert counters["shard_count"] >= 1
        sources = [cell["source"] for cell in job.result["cells"]]
        assert sources == ["computed", "computed"]

    def test_second_job_served_from_store(self, scheduler):
        requests = [_request(entries=entries) for entries in (16, 32)]
        first = scheduler.submit(_cells_payload(requests))
        _wait(first)
        second = scheduler.submit(_cells_payload(requests))
        _wait(second)
        counters = second.manifest["counters"]
        assert counters["store_hits"] == 2
        assert counters["store_misses"] == 0
        assert counters["cells_computed"] == 0
        assert all(
            cell["source"] == "store" for cell in second.result["cells"]
        )
        first_reports = {
            cell["cell"]: cell["report"] for cell in first.result["cells"]
        }
        for cell in second.result["cells"]:
            assert cell["report"] == first_reports[cell["cell"]]

    def test_event_stream_order_and_terminality(self, scheduler):
        job = scheduler.submit(_cells_payload([_request()]))
        _wait(job)
        events = [event["event"] for event in job.log.events_since(0)]
        assert events[0] == "job-queued"
        assert events[1] == "job-started"
        assert events[-1] == "job-completed"
        assert events.count("cell") == 1

    def test_invalid_submission_never_creates_a_job(self, scheduler):
        with pytest.raises(JobSpecError):
            scheduler.submit({"experiment": "nope"})
        assert scheduler.list_jobs() == []

    def test_execution_crash_fails_only_that_job(self, scheduler, monkeypatch):
        def boom(self, **kwargs):
            raise RuntimeError("engine on fire")

        monkeypatch.setattr(RunPlan, "execute", boom)
        job = scheduler.submit(_cells_payload([_request()]))
        _wait(job)
        assert job.state is JobState.FAILED
        assert "engine on fire" in job.error
        monkeypatch.undo()
        recovered = scheduler.submit(_cells_payload([_request()]))
        _wait(recovered)
        assert recovered.state is JobState.COMPLETED


# ---------------------------------------------------------------------------
# the HTTP API, end to end over real sockets
# ---------------------------------------------------------------------------


def _get(url: str):
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


def _post(url: str, payload) -> tuple:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _stream(url: str):
    with urllib.request.urlopen(url) as response:
        return [json.loads(line) for line in response if line.strip()]


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    from repro.service.api import ServiceServer

    tmp = tmp_path_factory.mktemp("service")
    store = ResultStore(str(tmp / "store.sqlite"))
    scheduler = JobScheduler(store, concurrency=2)
    server = ServiceServer(scheduler)
    url = server.start_background()
    yield url
    server.stop_background()
    store.close()


class TestHTTPAPI:
    def test_healthz_and_discovery(self, service):
        status, body = _get(f"{service}/healthz")
        assert status == 200 and body["ok"] is True
        status, body = _get(f"{service}/api/v1/experiments")
        assert "fig5" in body["experiments"]
        status, body = _get(f"{service}/api/v1/store/stats")
        assert "entries" in body["store"]

    def test_paper_sweep_resubmission_is_all_store_hits(self, service):
        """The acceptance path: submit the fig5 paper sweep over HTTP,
        stream it to completion, resubmit, and prove via the manifest
        dedup counters that zero cells were re-simulated."""
        sweep = {
            "experiment": "fig5",
            "instructions": SWEEP_INSTRUCTIONS,
            "engine": "fast",
        }
        status, submitted = _post(f"{service}/api/v1/jobs", sweep)
        assert status == 202 and submitted["state"] in ("queued", "running")
        job_id = submitted["job_id"]
        events = _stream(f"{service}/api/v1/jobs/{job_id}/events")
        kinds = [event["event"] for event in events]
        assert kinds[-1] == "job-completed"
        assert kinds.count("cell") == 60  # 10 predictors x 6 programs
        status, manifest = _get(f"{service}/api/v1/jobs/{job_id}/manifest")
        first_counters = manifest["counters"]
        assert first_counters["cells_unique"] == 60
        assert first_counters["store_misses"] == 60
        status, result = _get(f"{service}/api/v1/jobs/{job_id}/result")
        assert len(result["cells"]) == 60
        assert result["result"]["title"].startswith("Figure 5")

        status, resubmitted = _post(f"{service}/api/v1/jobs", sweep)
        second_id = resubmitted["job_id"]
        second_events = _stream(f"{service}/api/v1/jobs/{second_id}/events")
        assert all(
            event["source"] == "store"
            for event in second_events
            if event["event"] == "cell"
        )
        status, second_manifest = _get(
            f"{service}/api/v1/jobs/{second_id}/manifest"
        )
        counters = second_manifest["counters"]
        assert counters["store_hits"] == 60
        assert counters["store_misses"] == 0
        assert counters["cells_computed"] == 0  # zero cells re-simulated
        status, second_result = _get(f"{service}/api/v1/jobs/{second_id}/result")
        first_bytes = {
            cell["cell"]: json.dumps(cell["report"], sort_keys=True)
            for cell in result["cells"]
        }
        for cell in second_result["cells"]:
            assert json.dumps(cell["report"], sort_keys=True) == first_bytes[
                cell["cell"]
            ]

    def test_event_stream_resumes_from_offset(self, service):
        status, submitted = _post(
            f"{service}/api/v1/jobs", _cells_payload([_request()])
        )
        job_id = submitted["job_id"]
        _stream(f"{service}/api/v1/jobs/{job_id}/events")  # run to done
        tail = _stream(f"{service}/api/v1/jobs/{job_id}/events?from=2")
        assert tail and tail[0]["seq"] == 2

    def test_disconnect_and_resume_delivers_exactly_once(self, service):
        """A consumer that drops mid-stream and reconnects with
        ``?from=<last seen + 1>`` receives every remaining event exactly
        once, terminal event included — the chunked-NDJSON resume
        contract clients rely on (docs/SERVICE.md)."""
        requests = [
            _request(entries=entries) for entries in (16, 32, 64, 128)
        ]
        status, submitted = _post(
            f"{service}/api/v1/jobs", _cells_payload(requests)
        )
        job_id = submitted["job_id"]
        url = f"{service}/api/v1/jobs/{job_id}/events"
        before_drop = []
        response = urllib.request.urlopen(url)
        try:
            for line in response:
                if not line.strip():
                    continue
                before_drop.append(json.loads(line))
                if len(before_drop) == 2:
                    break  # simulate the client dying mid-stream
        finally:
            response.close()
        assert [event["seq"] for event in before_drop] == [0, 1]
        resumed = _stream(f"{url}?from={before_drop[-1]['seq'] + 1}")
        combined = before_drop + resumed
        # exactly once: the seq numbers are gapless, duplicate-free,
        # and end with the terminal event
        assert [event["seq"] for event in combined] == list(
            range(len(combined))
        )
        assert combined[-1]["event"] == "job-completed"
        assert [
            event["event"] for event in combined
        ].count("cell") == len(requests)
        # the stitched stream is identical to one uninterrupted replay
        assert _stream(url) == combined

    def test_job_listing_and_status(self, service):
        status, body = _get(f"{service}/api/v1/jobs")
        assert body["jobs"], "previous tests should have left jobs behind"
        job_id = body["jobs"][0]["job_id"]
        status, one = _get(f"{service}/api/v1/jobs/{job_id}")
        assert one["job_id"] == job_id

    @pytest.mark.parametrize(
        "path, method, payload, expected",
        [
            ("/api/v1/jobs", "POST", {"experiment": "nope"}, 400),
            ("/api/v1/jobs", "POST", None, 400),
            ("/api/v1/jobs/job-absent", "GET", None, 404),
            ("/api/v1/nowhere", "GET", None, 404),
        ],
    )
    def test_error_statuses(self, service, path, method, payload, expected):
        try:
            if method == "POST":
                _post(f"{service}{path}", payload)
            else:
                _get(f"{service}{path}")
        except urllib.error.HTTPError as error:
            assert error.code == expected
            body = json.loads(error.read())
            assert body["status"] == expected and body["error"]
        else:
            pytest.fail("expected an HTTP error")

    def test_result_conflicts_until_done(self, service, monkeypatch):
        """409 while the job is still queued/running."""
        import repro.service.scheduler as scheduler_module

        original = scheduler_module.JobScheduler._run_job
        gate = threading.Event()

        def slow(self, job):
            gate.wait(10.0)
            original(self, job)

        monkeypatch.setattr(scheduler_module.JobScheduler, "_run_job", slow)
        try:
            status, submitted = _post(
                f"{service}/api/v1/jobs", _cells_payload([_request(entries=128)])
            )
            with pytest.raises(urllib.error.HTTPError) as failure:
                _get(f"{service}/api/v1/jobs/{submitted['job_id']}/result")
            assert failure.value.code == 409
        finally:
            gate.set()
        _stream(f"{service}/api/v1/jobs/{submitted['job_id']}/events")


class TestMetricsEndpoint:
    def test_prometheus_exposition_over_http(self, tmp_path):
        """``GET /metrics`` serves the live registry in Prometheus text
        exposition: after running the same job twice, the store
        hit/miss and scheduler job counters must be present, non-zero
        where expected, and every sample line format-valid."""
        import re

        from repro.service.api import ServiceServer
        from repro.telemetry.core import Registry, get_registry, set_registry

        previous = get_registry()
        set_registry(Registry(enabled=True))
        store = ResultStore(str(tmp_path / "store.sqlite"))
        scheduler = JobScheduler(store, concurrency=1)
        server = ServiceServer(scheduler)
        url = server.start_background()
        try:
            payload = _cells_payload([_request(entries=16)])
            for _ in range(2):  # second run is served from the store
                _, submitted = _post(f"{url}/api/v1/jobs", payload)
                _stream(f"{url}/api/v1/jobs/{submitted['job_id']}/events")
            with urllib.request.urlopen(f"{url}/metrics") as response:
                assert response.status == 200
                content_type = response.headers["Content-Type"]
                text = response.read().decode("utf-8")
        finally:
            server.stop_background()
            store.close()
            set_registry(previous)
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert text.endswith("\n")
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+-]+$"
        )
        values = {}
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            assert sample.match(line), line
            name, _, value = line.partition(" ")
            values[name] = float(value)
        assert values["repro_store_hits_total"] >= 1
        assert values["repro_store_misses_total"] >= 1
        assert values["repro_service_jobs_submitted_total"] == 2
        assert values["repro_service_jobs_completed_total"] == 2
        assert values['repro_service_jobs{state="completed"}'] == 2
        assert values["repro_store_entries"] == 1


class TestConcurrentSubmitters:
    def test_overlapping_jobs_share_cells_byte_identically(self, tmp_path):
        """Two submitters with overlapping cells: every report is
        byte-identical across jobs and the overlap is paid for once —
        one job's dedup counters show the other's cells arriving from
        the store."""
        from repro.service.api import ServiceServer

        store = ResultStore(str(tmp_path / "store.sqlite"))
        scheduler = JobScheduler(store, concurrency=1)
        server = ServiceServer(scheduler)
        url = server.start_background()
        try:
            shared = [_request(entries=entries) for entries in (16, 32, 64)]
            only_a = [_request(program="espresso", entries=16)]
            only_b = [_request(program="espresso", entries=32)]
            payload_a = _cells_payload(shared + only_a, name="submitter-a")
            payload_b = _cells_payload(shared + only_b, name="submitter-b")
            ids = {}

            def submit(label, payload):
                _, body = _post(f"{url}/api/v1/jobs", payload)
                ids[label] = body["job_id"]

            threads = [
                threading.Thread(target=submit, args=("a", payload_a)),
                threading.Thread(target=submit, args=("b", payload_b)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results, manifests = {}, {}
            for label, job_id in ids.items():
                _stream(f"{url}/api/v1/jobs/{job_id}/events")
                _, results[label] = _get(f"{url}/api/v1/jobs/{job_id}/result")
                _, manifests[label] = _get(
                    f"{url}/api/v1/jobs/{job_id}/manifest"
                )
            hits = {
                label: manifests[label]["counters"]["store_hits"]
                for label in manifests
            }
            computed = {
                label: manifests[label]["counters"]["cells_computed"]
                for label in manifests
            }
            # jobs ran one at a time (concurrency=1): whichever went
            # second found the 3 shared cells already in the store
            assert sorted(hits.values()) == [0, 3]
            assert sum(computed.values()) == 5  # 3 shared + 2 private
            reports_a = {
                cell["cell"]: json.dumps(cell["report"], sort_keys=True)
                for cell in results["a"]["cells"]
            }
            overlap = 0
            for cell in results["b"]["cells"]:
                if cell["cell"] in reports_a:
                    overlap += 1
                    assert (
                        json.dumps(cell["report"], sort_keys=True)
                        == reports_a[cell["cell"]]
                    )
            assert overlap == 3
        finally:
            server.stop_background()
            store.close()

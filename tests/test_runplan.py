"""Tests for the spec → plan → backend executor layer.

Covers the :class:`RunPlan` dedup semantics, the corpus memoisation
key, run metadata provenance, the declarative experiment specs, the
serial ↔ process backend equivalence guarantee, and the CLI's ``list``
subcommand and ``--jobs`` flag.
"""

import json
import os

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.config import ArchitectureConfig
from repro.harness.experiments import EXPERIMENTS, SPECS
from repro.harness.runner import (
    BACKENDS,
    DEFAULT_WARMUP,
    RunPlan,
    RunRequest,
    run_request,
    sweep,
)
from repro.harness.spec import run_plans
from repro.harness.tables import format_seconds
from repro.workloads.corpus import cache_info, clear_cache, generate_trace, trace_key

SMALL = 20_000


class TestTraceKey:
    def test_resolves_profile_defaults(self):
        name, budget, seed, layout = trace_key("li")
        assert name == "li" and budget > 0 and layout == "natural"
        # explicit values override the profile's defaults
        explicit = trace_key("li", instructions=1234, seed=7, layout="random")
        assert explicit == ("li", 1234, 7, "random")

    def test_distinct_parameters_distinct_keys(self):
        keys = {
            trace_key("li", instructions=SMALL),
            trace_key("li", instructions=SMALL + 1),
            trace_key("li", instructions=SMALL, seed=99),
            trace_key("li", instructions=SMALL, layout="random"),
        }
        assert len(keys) == 4

    def test_scale_env_folds_into_key(self, monkeypatch):
        base = trace_key("li", instructions=SMALL)
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.5")
        scaled = trace_key("li", instructions=SMALL)
        assert scaled[1] == SMALL // 2 and scaled != base

    def test_cache_info_and_clear(self):
        clear_cache()
        assert cache_info()["entries"] == 0
        generate_trace("li", instructions=SMALL)
        info = cache_info()
        assert info["entries"] == 1
        assert trace_key("li", instructions=SMALL) in info["keys"]
        assert info["instructions"] > 0
        clear_cache()
        assert cache_info()["entries"] == 0

    def test_memoised_same_object(self):
        a = generate_trace("li", instructions=SMALL)
        b = generate_trace("li", instructions=SMALL)
        assert a is b


class TestRunPlan:
    def request(self, **overrides):
        defaults = dict(
            config=ArchitectureConfig(frontend="btb", entries=128),
            program="li",
            instructions=SMALL,
        )
        defaults.update(overrides)
        return RunRequest(**defaults)

    def test_dedups_identical_cells(self):
        plan = RunPlan()
        plan.add(self.request())
        plan.add(self.request())
        assert plan.requested == 2
        assert plan.unique == 1

    def test_distinct_cells_kept(self):
        plan = RunPlan([self.request(), self.request(warmup=0.0)])
        assert plan.unique == 2

    def test_insertion_order_preserved(self):
        first = self.request()
        second = self.request(program="doduc")
        plan = RunPlan([first, second, first])
        assert plan.requests == (first, second)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RunPlan([self.request()]).execute(backend="threads")

    def test_backend_registry(self):
        assert set(BACKENDS) == {"serial", "process"}

    def test_execute_returns_report_per_unique_cell(self):
        plan = RunPlan([self.request(), self.request(program="doduc")])
        reports = plan.execute()
        assert set(reports) == set(plan.requests)
        for request, report in reports.items():
            assert report.program == request.program

    def test_cross_experiment_dedup_saves_runs(self):
        # fig5 and fig7 share their BTB cells; the pooled plan must
        # execute strictly fewer cells than the sum of the parts
        plans = [
            SPECS["fig5"].plan(programs=("li",), instructions=SMALL),
            SPECS["fig7"].plan(programs=("li",), instructions=SMALL),
        ]
        pooled = RunPlan()
        for plan in plans:
            pooled.add_all(plan.cells)
        assert pooled.requested == sum(len(p.cells) for p in plans)
        assert pooled.unique < pooled.requested

    def test_sweep_dedups_repeated_configs(self):
        config = ArchitectureConfig(frontend="btb", entries=128)
        results = sweep([config, config], ["li"], instructions=SMALL)
        assert list(results) == [config.label()]
        assert results[config.label()][0].program == "li"


class TestRunMetadata:
    def test_report_carries_provenance(self):
        request = RunRequest(
            config=ArchitectureConfig(frontend="btb", entries=128),
            program="li",
            instructions=SMALL,
        )
        report = run_request(request)
        meta = report.meta
        assert meta is not None
        assert meta.program == "li"
        assert meta.config_label == request.config.label()
        assert meta.backend == "serial"
        assert meta.warmup == DEFAULT_WARMUP
        assert meta.wall_time_s > 0
        assert meta.pid > 0

    def test_meta_does_not_affect_equality(self):
        request = RunRequest(
            config=ArchitectureConfig(frontend="btb", entries=128),
            program="li",
            instructions=SMALL,
        )
        assert run_request(request) == run_request(request)

    def test_meta_exported_as_json(self):
        from repro.harness.export import to_json

        result = SPECS["johnson"].run(programs=("li",), instructions=SMALL)
        # aggregated reports have no meta, but per-cell exports do
        request = RunRequest(
            config=ArchitectureConfig(frontend="btb", entries=128),
            program="li",
            instructions=SMALL,
        )
        result.data["cell"] = run_request(request)
        payload = json.loads(to_json(result))
        assert payload["data"]["cell"]["meta"]["backend"] == "serial"

    def test_config_describe_elides_defaults(self):
        config = ArchitectureConfig(frontend="btb", entries=128, cache_kb=32)
        described = config.describe()
        assert described["label"] == config.label()
        assert described["frontend"] == "btb"
        assert described["cache_kb"] == 32
        assert "line_bytes" not in described  # default elided


class TestSpecs:
    def test_every_experiment_has_a_spec(self):
        assert set(SPECS) == set(EXPERIMENTS)

    def test_plans_are_cheap_and_countable(self):
        plan = SPECS["fig4"].plan(programs=("li",), instructions=SMALL)
        # 2 programs' worth of grid collapsed to 1: 6 caches x 4 designs
        assert len(plan.cells) == 24

    def test_cost_model_experiments_declare_zero_cells(self):
        for name in ("fig3", "fig6", "address-space", "table1"):
            assert SPECS[name].plan().cells == ()

    def test_spec_run_matches_driver(self):
        spec_result = SPECS["johnson"].run(programs=("li",), instructions=SMALL)
        driver_result = EXPERIMENTS["johnson"](programs=("li",), instructions=SMALL)
        assert str(spec_result) == str(driver_result)

    def test_run_plans_returns_results_in_order(self):
        plans = [
            SPECS["fig6"].plan(),
            SPECS["fig3"].plan(),
        ]
        results, pooled = run_plans(plans)
        assert [r.name for r in results] == ["fig6", "fig3"]
        assert pooled.unique == 0


@pytest.mark.parametrize("name", ["johnson", "misfetch-causes"])
def test_process_backend_matches_serial(name):
    """The satellite guarantee: the process backend produces
    byte-identical SimulationReports (and rendered text) to serial."""
    spec = SPECS[name]
    plan = spec.plan(programs=("li",), instructions=SMALL)
    serial = RunPlan(plan.cells).execute(backend="serial")
    process = RunPlan(plan.cells).execute(backend="process", jobs=2)
    assert set(serial) == set(process)
    for request in serial:
        # dataclass equality covers every simulation field (meta is
        # excluded from comparison by design: wall time and pid differ)
        assert serial[request] == process[request]
        assert process[request].meta.backend == "process"
        assert serial[request].frontend_stats == process[request].frontend_stats
    assert str(plan.finish(serial)) == str(plan.finish(process))


class TestCLI:
    def test_list_subcommand(self, capsys):
        assert cli_main(["list", "--programs", "li"]) == 0
        out = capsys.readouterr().out
        assert "experiment" in out and "cells" in out
        for name in EXPERIMENTS:
            assert name in out
        assert "unique after cross-experiment dedup" in out

    def test_jobs_flag_parallel_run(self, capsys, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert (
            cli_main(
                [
                    "johnson",
                    "--programs",
                    "li",
                    "--instructions",
                    str(SMALL),
                    "--jobs",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Johnson" in out
        assert "process backend, jobs=2" in out

    def test_jobs_zero_means_auto(self, capsys):
        assert cli_main(["fig3", "--jobs", "0"]) == 0
        assert "jobs=auto" in capsys.readouterr().out

    def test_serial_and_parallel_cli_text_match(self, capsys, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        argv = ["johnson", "--programs", "li", "--instructions", str(SMALL)]
        assert cli_main(argv) == 0
        serial_out = capsys.readouterr().out
        assert cli_main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        body = lambda text: [  # noqa: E731 - tiny local helper
            line
            for line in text.splitlines()
            if line and not line.startswith("[")
        ]
        assert body(serial_out) == body(parallel_out)


class TestFormatSeconds:
    def test_sub_second_is_milliseconds(self):
        assert format_seconds(0.25) == "250ms"

    def test_seconds_one_decimal(self):
        assert format_seconds(12.34) == "12.3s"

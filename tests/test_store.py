"""The content-addressed result store (docs/SERVICE.md).

Covers the SQLite persistence layer on its own: put/get round trips
that preserve checkpoint-serialised bytes, first-write-wins dedup,
checksummed payloads with lazy corrupt eviction, ``stats`` / ``gc`` /
``verify`` administration, promotion of a PR 4 checkpoint journal
into the store, store-aware :class:`~repro.harness.runner.RunPlan`
execution (hit/miss counters, observer events), and the ``store``
CLI subcommand.
"""

from __future__ import annotations

import json
import sqlite3
import threading

import pytest

from repro.harness.checkpoint import (
    CheckpointJournal,
    cell_key,
    report_to_dict,
)
from repro.harness.cli import main as cli_main
from repro.harness.config import ArchitectureConfig
from repro.harness.runner import OBSERVER_EVENTS, RunPlan, RunRequest, run_request
from repro.service.store import DEFAULT_STORE_NAME, STORE_SCHEMA, ResultStore
from repro.telemetry.core import Registry, use

#: trace length for store tests — tiny, the store does not simulate
TINY = 2_000


def _request(program: str = "li", entries: int = 32) -> RunRequest:
    return RunRequest(
        config=ArchitectureConfig(frontend="btb", entries=entries, cache_kb=8),
        program=program,
        instructions=TINY,
    )


@pytest.fixture
def store(tmp_path):
    store = ResultStore(str(tmp_path / "store.sqlite"))
    yield store
    store.close()


class TestRoundTrip:
    def test_miss_then_put_then_hit(self, store):
        request = _request()
        assert store.get(request) is None
        report = run_request(request)
        assert store.put(request, report) is True
        fetched = store.get(request)
        assert fetched is not None
        assert report_to_dict(fetched) == report_to_dict(report)

    def test_hit_is_byte_identical(self, store):
        """The stored payload is returned verbatim — the foundation of
        the service's byte-identical overlapping-jobs guarantee."""
        request = _request()
        report = run_request(request)
        store.put(request, report)
        first = json.dumps(report_to_dict(store.get(request)), sort_keys=True)
        second = json.dumps(report_to_dict(store.get(request)), sort_keys=True)
        assert first == second == json.dumps(report_to_dict(report), sort_keys=True)

    def test_duplicate_put_is_a_dedup_skip(self, store):
        request = _request()
        report = run_request(request)
        assert store.put(request, report) is True
        assert store.put(request, report) is False
        assert store.stats()["entries"] == 1

    def test_distinct_cells_are_distinct_entries(self, store):
        requests = [_request(entries=entries) for entries in (16, 32, 64)]
        for request in requests:
            store.put(request, run_request(request))
        assert store.stats()["entries"] == 3
        for request in requests:
            assert store.get(request).label == request.config.label()

    def test_fetch_and_put_many(self, store):
        requests = [_request(entries=entries) for entries in (16, 32)]
        reports = {request: run_request(request) for request in requests}
        assert store.fetch(requests) == {}
        assert store.put_many(reports) == 2
        fetched = store.fetch(requests + [_request(entries=128)])
        assert set(fetched) == set(requests)

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        request = _request()
        report = run_request(request)
        first = ResultStore(path)
        first.put(request, report)
        first.close()
        second = ResultStore(path)
        try:
            fetched = second.get(request)
            assert report_to_dict(fetched) == report_to_dict(report)
        finally:
            second.close()


class TestIntegrity:
    def _corrupt_all(self, store):
        with store._lock:
            store._conn.execute("UPDATE results SET payload = '{}'")
            store._conn.commit()

    def test_corrupt_entry_is_evicted_on_read(self, store):
        request = _request()
        store.put(request, run_request(request))
        self._corrupt_all(store)
        registry = Registry(enabled=True)
        with use(registry):
            assert store.get(request) is None
        counters = registry.snapshot()["counters"]
        assert counters["store.corrupt_evictions"] == 1
        assert store.stats()["entries"] == 0

    def test_verify_reports_and_fixes(self, store):
        good, bad = _request(entries=16), _request(entries=32)
        store.put(good, run_request(good))
        store.put(bad, run_request(bad))
        with store._lock:
            store._conn.execute(
                "UPDATE results SET payload = '{}' WHERE cell_key = ?",
                (cell_key(bad),),
            )
            store._conn.commit()
        audit = store.verify()
        assert audit["checked"] == 2 and not audit["ok"]
        assert [entry["cell_key"] for entry in audit["corrupt"]] == [cell_key(bad)]
        fixed = store.verify(fix=True)
        assert fixed["removed"] == 1
        assert store.verify()["ok"]
        assert store.get(good) is not None

    def test_verify_names_each_corruption_reason(self, store):
        """The audit distinguishes checksum mismatches from empty and
        unparseable payloads — the latter two with a checksum that was
        re-stamped to match, so only ``verify`` can catch them."""
        from repro.harness.checkpoint import payload_digest

        mismatch, missing, garbled = (
            _request(entries=16),
            _request(entries=32),
            _request(entries=64),
        )
        for request in (mismatch, missing, garbled):
            store.put(request, run_request(request))
        with store._lock:
            store._conn.execute(
                "UPDATE results SET payload = '{}' WHERE cell_key = ?",
                (cell_key(mismatch),),
            )
            for request, payload in ((missing, ""), (garbled, "not json")):
                store._conn.execute(
                    "UPDATE results SET payload = ?, payload_sha = ? "
                    "WHERE cell_key = ?",
                    (payload, payload_digest(payload), cell_key(request)),
                )
            store._conn.commit()
        audit = store.verify()
        assert audit["checked"] == 3 and not audit["ok"]
        reasons = {
            entry["cell_key"]: entry["reason"] for entry in audit["corrupt"]
        }
        assert reasons == {
            cell_key(mismatch): "checksum-mismatch",
            cell_key(missing): "missing-payload",
            cell_key(garbled): "unparseable",
        }
        assert store.verify(fix=True)["removed"] == 3
        assert store.verify()["ok"]

    def test_gc_by_age_and_count(self, store):
        requests = [_request(entries=entries) for entries in (16, 32, 64, 128)]
        for request in requests:
            store.put(request, run_request(request))
        assert store.gc()["removed"] == 0  # no bounds: vacuum only
        assert store.gc(keep=2) == {"removed": 2, "kept": 2}
        assert store.gc(max_age_s=0.0)["kept"] == 0

    def test_stats_shape(self, store):
        stats = store.stats()
        assert stats["schema"] == STORE_SCHEMA
        for key in ("entries", "total_hits", "payload_bytes", "db_bytes"):
            assert isinstance(stats[key], int)


class TestTelemetryAndConcurrency:
    def test_hit_miss_counters(self, store):
        request = _request()
        registry = Registry(enabled=True)
        with use(registry):
            store.get(request)
            store.put(request, run_request(request))
            store.get(request)
            store.put(request, run_request(request))
        counters = registry.snapshot()["counters"]
        assert counters["store.misses"] == 1
        assert counters["store.hits"] == 1
        assert counters["store.puts"] == 1
        assert counters["store.dedup_skips"] == 1

    def test_concurrent_writers_dedup_cleanly(self, store):
        """First write wins; racing writers of the same cell never
        error or double-insert (INSERT OR IGNORE under WAL)."""
        request = _request()
        report = run_request(request)
        outcomes = []

        def put():
            outcomes.append(store.put(request, report))

        threads = [threading.Thread(target=put) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count(True) == 1
        assert store.stats()["entries"] == 1


class TestJournalPromotion:
    def test_import_journal(self, store, tmp_path):
        """A PR 4 per-run checkpoint journal promotes into the store."""
        request = _request()
        report = run_request(request)
        journal = CheckpointJournal(str(tmp_path / "ckpt"))
        journal.append(request, report)
        journal.close()
        assert store.import_journal(journal) == 1
        fetched = store.get(request)
        assert report_to_dict(fetched) == report_to_dict(report)
        # second import is a no-op (dedup)
        assert store.import_journal(journal) == 0


class TestStoreAwareExecution:
    def test_plan_execute_hits_and_misses(self, store):
        requests = [_request(entries=entries) for entries in (16, 32)]
        plan = RunPlan(requests)
        plan.execute(store=store)
        assert (plan.store_hits, plan.store_misses) == (0, 2)
        replay = RunPlan(requests + [_request(entries=64)])
        events = []
        replay.execute(
            store=store,
            observer=lambda event, request, payload: events.append(
                (event, request)
            ),
        )
        assert (replay.store_hits, replay.store_misses) == (2, 1)
        kinds = [event for event, _ in events]
        assert kinds.count("store-hit") == 2
        assert kinds.count("completed") == 1
        assert set(kinds) <= set(OBSERVER_EVENTS)

    def test_served_reports_equal_computed(self, store):
        request = _request()
        computed = RunPlan([request]).execute(store=store)[request]
        served = RunPlan([request]).execute(store=store)[request]
        assert report_to_dict(served) == report_to_dict(computed)


class TestStoreCLI:
    def test_stats_gc_verify(self, tmp_path, capsys):
        path = str(tmp_path / "store.sqlite")
        store = ResultStore(path)
        for entries in (16, 32, 64):
            request = _request(entries=entries)
            store.put(request, run_request(request))
        store.close()
        assert cli_main(["store", "stats", "--store", path]) == 0
        assert "entries" in capsys.readouterr().out
        assert cli_main(["store", "gc", "--store", path, "--gc-keep", "1"]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert cli_main(["store", "verify", "--store", path]) == 0
        assert "0 corrupt" in capsys.readouterr().out

    def test_verify_exits_nonzero_on_corruption(self, tmp_path, capsys):
        path = str(tmp_path / "store.sqlite")
        store = ResultStore(path)
        request = _request()
        store.put(request, run_request(request))
        store.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE results SET payload = '{}'")
        conn.commit()
        conn.close()
        assert cli_main(["store", "verify", "--store", path]) == 1
        printed = capsys.readouterr().out
        assert "store verify FAILED" in printed
        assert "1 corrupt" in printed
        assert "reason=checksum-mismatch" in printed
        assert cli_main(["store", "verify", "--store", path, "--fix"]) == 0
        assert cli_main(["store", "verify", "--store", path]) == 0
        assert "store verify OK" in capsys.readouterr().out

    def test_missing_store_is_a_clean_error(self, tmp_path, capsys):
        path = str(tmp_path / "absent.sqlite")
        assert cli_main(["store", "gc", "--store", path]) == 1
        assert "does not exist" in capsys.readouterr().out

    def test_default_action_is_stats(self, tmp_path, capsys):
        path = str(tmp_path / "store.sqlite")
        assert cli_main(["store", "--store", path]) == 0
        assert "entries" in capsys.readouterr().out

    def test_run_with_store_flag_reuses_results(self, tmp_path, capsys):
        path = str(tmp_path / "store.sqlite")
        argv = [
            "fig5",
            "--programs",
            "li",
            "--instructions",
            str(TINY),
            "--store",
            path,
        ]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert "0 cell(s) served" in first
        assert cli_main(argv) == 0
        second = capsys.readouterr().out
        assert "10 cell(s) served" in second and "0 simulated" in second

"""End-to-end integration tests: the paper's qualitative claims must
hold on scaled-down simulations.

These run at ~120k instructions per program on a program subset, so
they assert *orderings and shapes*, not absolute numbers; the
full-scale numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.harness.config import ArchitectureConfig
from repro.harness.runner import simulate
from repro.metrics.report import average_reports

INSTRUCTIONS = 120_000
ALL = ("doduc", "espresso", "gcc", "li", "cfront", "groff")


def run(frontend, programs=ALL, instructions=INSTRUCTIONS, **kwargs):
    config = ArchitectureConfig(frontend=frontend, **kwargs)
    reports = [
        simulate(config, program, instructions=instructions) for program in programs
    ]
    return average_reports(reports, label=config.label())


@pytest.fixture(scope="module")
def landscape():
    """The configurations every claim test reads from."""
    results = {}
    results["btb128"] = run("btb", entries=128, btb_assoc=1, cache_kb=16)
    results["btb256"] = run("btb", entries=256, btb_assoc=1, cache_kb=16)
    for kb in (8, 16, 32):
        results[f"nls1024@{kb}K"] = run(
            "nls-table", entries=1024, cache_kb=kb, cache_assoc=1
        )
        results[f"nlsC@{kb}K"] = run("nls-cache", cache_kb=kb, cache_assoc=1)
    results["nls512@16K"] = run("nls-table", entries=512, cache_kb=16)
    results["nls2048@16K"] = run("nls-table", entries=2048, cache_kb=16)
    results["oracle"] = run("oracle", cache_kb=16)
    results["fallthrough"] = run("fall-through", cache_kb=16)
    results["johnson@16K"] = run("johnson", cache_kb=16)
    return results


class TestPaperClaims:
    def test_nls_table_beats_equal_cost_btb(self, landscape):
        # claim 2 (S6.3): 1024 NLS-table beats the 128-entry BTB of
        # equal RBE cost
        assert landscape["nls1024@16K"].bep < landscape["btb128"].bep

    def test_nls_table_competitive_with_double_cost_btb(self, landscape):
        # the 256-entry BTB costs ~2x the 1024 NLS-table yet performs
        # comparably
        assert landscape["nls1024@16K"].bep < landscape["btb256"].bep * 1.10

    def test_nls_improves_with_cache_size(self, landscape):
        # claim 3 (S7): NLS BEP falls as the cache grows
        assert (
            landscape["nls1024@32K"].bep
            < landscape["nls1024@16K"].bep
            < landscape["nls1024@8K"].bep
        )

    def test_nls_misfetch_component_shrinks_with_cache(self, landscape):
        assert (
            landscape["nls1024@32K"].bep_misfetch
            < landscape["nls1024@8K"].bep_misfetch
        )

    def test_nls_table_beats_nls_cache_at_equal_cost(self, landscape):
        # claim 1 (S6.1): at each cache size the NLS-cache has the same
        # cost as one of the tables and performs worse
        for kb, table in ((8, "nls512@16K"), (16, "nls1024@16K")):
            pass  # cost pairs are asserted in test_cost_models
        assert landscape["nls1024@16K"].bep < landscape["nlsC@16K"].bep
        assert landscape["nls1024@8K"].bep < landscape["nlsC@8K"].bep

    def test_diminishing_returns_beyond_1024_entries(self, landscape):
        # claim 5 (S6.1)
        gain_512_to_1024 = landscape["nls512@16K"].bep - landscape["nls1024@16K"].bep
        gain_1024_to_2048 = (
            landscape["nls1024@16K"].bep - landscape["nls2048@16K"].bep
        )
        assert gain_512_to_1024 > 0
        assert gain_1024_to_2048 < gain_512_to_1024

    def test_mispredict_component_shared(self, landscape):
        # both architectures use the identical PHT: their mispredict
        # components must be close (S7)
        assert landscape["nls1024@16K"].bep_mispredict == pytest.approx(
            landscape["btb128"].bep_mispredict, rel=0.15
        )

    def test_bounds(self, landscape):
        # oracle <= real front-ends <= no-front-end, in misfetch terms
        for key in ("btb128", "nls1024@16K", "nlsC@16K"):
            assert landscape["oracle"].bep_misfetch <= landscape[key].bep_misfetch
            assert landscape[key].bep_misfetch <= landscape["fallthrough"].bep_misfetch

    def test_decoupled_nls_beats_johnson(self, landscape):
        # S6.2: two-level decoupled prediction beats the coupled 1-bit
        # successor-index design
        assert landscape["nls1024@16K"].bep < landscape["johnson@16K"].bep


class TestPerProgramCharacter:
    def test_branch_rich_programs_gain_most(self):
        # claim 4 (S7): gcc-like programs benefit more from the NLS
        # than doduc-like programs
        gains = {}
        for program in ("doduc", "gcc"):
            btb = simulate(
                ArchitectureConfig(frontend="btb", entries=128, cache_kb=16),
                program,
                instructions=INSTRUCTIONS,
            )
            nls = simulate(
                ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=16),
                program,
                instructions=INSTRUCTIONS,
            )
            gains[program] = btb.bep - nls.bep
        assert gains["gcc"] > gains["doduc"]

    def test_miss_rate_character(self):
        # gcc has a much higher I-cache miss rate than espresso (S5)
        config = ArchitectureConfig(frontend="btb", entries=128, cache_kb=16)
        gcc = simulate(config, "gcc", instructions=INSTRUCTIONS)
        espresso = simulate(config, "espresso", instructions=INSTRUCTIONS)
        assert gcc.icache_miss_rate > 2 * espresso.icache_miss_rate


class TestCPIProperties:
    def test_cpi_above_one_and_ordered(self):
        config_nls = ArchitectureConfig(frontend="nls-table", entries=1024)
        config_oracle = ArchitectureConfig(frontend="oracle")
        for kb in (8, 32):
            nls = simulate(
                config_nls.with_cache(kb, 1), "li", instructions=INSTRUCTIONS
            )
            oracle = simulate(
                config_oracle.with_cache(kb, 1), "li", instructions=INSTRUCTIONS
            )
            assert nls.cpi >= oracle.cpi >= 1.0

    def test_bigger_cache_lowers_cpi(self):
        config = ArchitectureConfig(frontend="nls-table", entries=1024)
        small = simulate(config.with_cache(8, 1), "gcc", instructions=INSTRUCTIONS)
        large = simulate(config.with_cache(32, 1), "gcc", instructions=INSTRUCTIONS)
        assert large.cpi < small.cpi

"""Tests for direction predictors, counters and the return stack."""

import pytest

from repro.predictors.counters import CounterArray, SaturatingCounter
from repro.predictors.pht import (
    BimodalPredictor,
    GAgPredictor,
    GlobalHistoryRegister,
    GSharePredictor,
    PanDegeneratePredictor,
    make_direction_predictor,
)
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.static_ import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BTFNTPredictor,
)


class TestSaturatingCounter:
    def test_initial_weakly_not_taken(self):
        counter = SaturatingCounter(bits=2)
        assert counter.value == 1
        assert not counter.taken

    def test_saturates_high(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.update(True)
        assert counter.value == 3
        assert counter.taken

    def test_saturates_low(self):
        counter = SaturatingCounter(bits=2, initial=3)
        for _ in range(10):
            counter.update(False)
        assert counter.value == 0

    def test_hysteresis(self):
        counter = SaturatingCounter(bits=2, initial=3)
        counter.update(False)
        assert counter.taken  # one not-taken does not flip a strong state
        counter.update(False)
        assert not counter.taken

    def test_one_bit_counter(self):
        counter = SaturatingCounter(bits=1, initial=0)
        assert not counter.taken
        counter.update(True)
        assert counter.taken

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, initial=4)


class TestCounterArray:
    def test_independent_entries(self):
        array = CounterArray(8)
        array.update(0, True)
        array.update(0, True)
        assert array.predict(0)
        assert not array.predict(1)

    def test_reset(self):
        array = CounterArray(4)
        array.update(2, True)
        array.update(2, True)
        array.reset()
        assert not array.predict(2)

    def test_value_accessor(self):
        array = CounterArray(4)
        assert array.value(0) == 1

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            CounterArray(0)
        with pytest.raises(ValueError):
            CounterArray(4, bits=0)


class TestGlobalHistory:
    def test_push_shifts_in_low_bit(self):
        history = GlobalHistoryRegister(4)
        history.push(True)
        history.push(False)
        history.push(True)
        assert history.value == 0b101

    def test_window_is_bounded(self):
        history = GlobalHistoryRegister(2)
        for _ in range(5):
            history.push(True)
        assert history.value == 0b11

    def test_reset(self):
        history = GlobalHistoryRegister(4)
        history.push(True)
        history.reset()
        assert history.value == 0


class TestGShare:
    def test_learns_biased_branch(self):
        predictor = GSharePredictor(entries=4096)
        pc = 0x4000
        mispredicts = 0
        for _ in range(200):
            if predictor.predict(pc) is not True:
                mispredicts += 1
            predictor.update(pc, True)
        assert mispredicts < 20

    def test_learns_short_loop_pattern(self):
        # 3 taken, 1 not-taken repeating: gshare separates the
        # contexts through the history register
        predictor = GSharePredictor(entries=4096)
        pc = 0x4000
        pattern = [True, True, True, False] * 100
        mispredicts = 0
        for outcome in pattern[-200:]:
            pass
        for index, outcome in enumerate(pattern):
            predicted = predictor.predict(pc)
            if index >= 200 and predicted != outcome:
                mispredicts += 1
            predictor.update(pc, outcome)
        assert mispredicts < 10

    def test_update_trains_predicted_index(self):
        predictor = GSharePredictor(entries=16)
        pc = 0x4000
        predictor.update(pc, True)
        predictor.update(pc, True)
        # history has shifted, but training happened at matching indices
        assert isinstance(predictor.predict(pc), bool)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            GSharePredictor(entries=1000)


class TestOtherPHTs:
    @pytest.mark.parametrize(
        "cls", [PanDegeneratePredictor, GAgPredictor, BimodalPredictor]
    )
    def test_learns_always_taken(self, cls):
        predictor = cls(entries=1024)
        pc = 0x4000
        for _ in range(50):
            predictor.update(pc, True)
        assert predictor.predict(pc)

    def test_bimodal_is_history_free(self):
        predictor = BimodalPredictor(entries=1024)
        a, b = 0x4000, 0x4004
        for _ in range(4):
            predictor.update(a, True)
            predictor.update(b, False)
        assert predictor.predict(a)
        assert not predictor.predict(b)

    def test_factory_builds_all_names(self):
        for name in ("gshare", "pan", "gag", "bimodal", "taken", "not-taken", "btfnt"):
            predictor = make_direction_predictor(name)
            assert hasattr(predictor, "predict")
            assert hasattr(predictor, "update")

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_direction_predictor("tage")


class TestStaticPredictors:
    def test_always_taken(self):
        assert AlwaysTakenPredictor().predict(0x100, 0x200)

    def test_always_not_taken(self):
        assert not AlwaysNotTakenPredictor().predict(0x100, 0x200)

    def test_btfnt(self):
        predictor = BTFNTPredictor()
        assert predictor.predict(pc=0x200, target=0x100)  # backward: taken
        assert not predictor.predict(pc=0x100, target=0x200)  # forward: not

    def test_updates_are_no_ops(self):
        predictor = BTFNTPredictor()
        predictor.update(0x100, True)  # must not raise


class TestReturnAddressStack:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_peek(self):
        ras = ReturnAddressStack(4)
        assert ras.peek() is None
        ras.push(0x100)
        assert ras.peek() == 0x100
        assert ras.depth == 1  # peek does not pop

    def test_overflow_overwrites_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(0x100)
        ras.push(0x200)
        ras.push(0x300)  # overwrites 0x100
        assert ras.pop() == 0x300
        assert ras.pop() == 0x200
        assert ras.pop() is None  # 0x100 was lost — deep recursion cost

    def test_depth_saturates_at_capacity(self):
        ras = ReturnAddressStack(2)
        for address in (1, 2, 3, 4):
            ras.push(address * 4)
        assert ras.depth == 2

    def test_clear(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.clear()
        assert ras.depth == 0
        assert ras.pop() is None

    def test_statistics(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.pop()
        assert ras.pushes == 1
        assert ras.pops == 1

    def test_overflow_counter(self):
        ras = ReturnAddressStack(2)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.overflows == 0
        ras.push(0x300)  # wraps: clobbers 0x100
        ras.push(0x400)  # wraps again: clobbers 0x200
        assert ras.overflows == 2
        assert ras.pushes == 4

    def test_underflow_and_overflow_counters_are_independent(self):
        ras = ReturnAddressStack(1)
        assert ras.pop() is None  # underflow: nothing ever pushed
        ras.push(0x100)
        ras.push(0x200)  # overflow: clobbers 0x100
        assert ras.underflows == 1
        assert ras.overflows == 1

    def test_clear_keeps_overflow_statistics(self):
        ras = ReturnAddressStack(1)
        ras.push(0x100)
        ras.push(0x200)
        ras.clear()
        assert ras.overflows == 1
        assert ras.depth == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)

    def test_paper_default_is_32(self):
        assert ReturnAddressStack().capacity == 32


class TestPAg:
    def test_learns_local_period(self):
        from repro.predictors.pht import PAgPredictor

        predictor = PAgPredictor(entries=4096)
        pc = 0x4000
        pattern = [True, True, False] * 200
        mispredicts = 0
        for index, outcome in enumerate(pattern):
            if index >= 100 and predictor.predict(pc) != outcome:
                mispredicts += 1
            predictor.update(pc, outcome)
        assert mispredicts < 10  # local history nails the period

    def test_per_branch_histories_independent(self):
        from repro.predictors.pht import PAgPredictor

        predictor = PAgPredictor(entries=1024, history_entries=1024)
        a, b = 0x4000, 0x4004
        for _ in range(100):
            predictor.update(a, True)
            predictor.update(b, False)
        assert predictor.predict(a)
        assert not predictor.predict(b)


class TestCombining:
    def test_beats_or_matches_components_on_mixed_stream(self):
        import random

        from repro.predictors.pht import (
            BimodalPredictor,
            CombiningPredictor,
            GSharePredictor,
        )

        rng = random.Random(7)
        # branch A: biased; branch B: periodic (suits local/bimodal vs
        # gshare differently)
        stream = []
        pattern_position = 0
        for _ in range(3000):
            if rng.random() < 0.5:
                stream.append((0x4000, rng.random() < 0.9))
            else:
                stream.append((0x4004, pattern_position % 2 == 0))
                pattern_position += 1

        def score(predictor):
            wrong = 0
            for index, (pc, outcome) in enumerate(stream):
                if index > 500 and predictor.predict(pc) != outcome:
                    wrong += 1
                predictor.update(pc, outcome)
            return wrong

        combined = score(CombiningPredictor(entries=4096))
        bimodal = score(BimodalPredictor(entries=4096))
        gshare = score(GSharePredictor(entries=4096))
        assert combined <= min(bimodal, gshare) * 1.25

    def test_factory_knows_new_schemes(self):
        from repro.predictors.pht import make_direction_predictor

        for name in ("pag", "combining"):
            predictor = make_direction_predictor(name)
            predictor.update(0x1000, True)
            assert isinstance(predictor.predict(0x1000), bool)

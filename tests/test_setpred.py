"""Tests for the fall-through way predictor (S4.2, second approach)."""

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.cache.setpred import FallThroughWayPredictor


def make():
    cache = InstructionCache(CacheGeometry(8 * 1024, 32, 2))
    return cache, FallThroughWayPredictor(cache)


class TestPrediction:
    def test_cold_returns_none(self):
        cache, predictor = make()
        cache.access(0x1000)
        assert predictor.predict(0x1000) is None

    def test_absent_carrier_returns_none(self):
        cache, predictor = make()
        assert predictor.predict(0x1000) is None

    def test_trains_and_predicts(self):
        cache, predictor = make()
        cache.access(0x1000)
        successor_way = cache.access(0x1020).way
        predictor.update(0x1000, successor_way)
        assert predictor.predict(0x1000) == successor_way

    def test_eviction_clears_state(self):
        cache, predictor = make()
        g = cache.geometry
        a = 0x1000
        cache.access(a)
        predictor.update(a, 1)
        # evict a by filling both ways of its set with other tags
        cache.access(a + g.size_bytes // 2)
        cache.access(a + g.size_bytes)
        cache.access(a + 3 * g.size_bytes // 2)
        cache.access(a)
        assert predictor.predict(a) is None

    def test_update_on_absent_carrier_is_dropped(self):
        cache, predictor = make()
        predictor.update(0x1000, 1)
        cache.access(0x1000)
        assert predictor.predict(0x1000) is None


class TestAccounting:
    def test_record_outcome(self):
        cache, predictor = make()
        assert predictor.record_outcome(1, 1)
        assert not predictor.record_outcome(0, 1)
        assert not predictor.record_outcome(None, 0)  # cold counts wrong
        assert predictor.predictions == 3
        assert predictor.correct == 1
        assert predictor.accuracy == 1 / 3

    def test_accuracy_zero_when_unused(self):
        cache, predictor = make()
        assert predictor.accuracy == 0.0

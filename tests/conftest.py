"""Shared fixtures for the test suite.

Simulation-based tests run on short traces (tens of thousands of
instructions); module-scoped fixtures memoise them so the suite stays
fast.
"""

from __future__ import annotations

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.isa.branches import BranchKind
from repro.workloads.corpus import clear_trace_cache, generate_trace
from repro.workloads.trace import Trace

#: trace length used by simulation-level tests
TEST_INSTRUCTIONS = 60_000


@pytest.fixture
def geometry_8k_dm() -> CacheGeometry:
    """8 KB direct-mapped cache geometry (256 lines of 32 bytes)."""
    return CacheGeometry(size_bytes=8 * 1024, line_bytes=32, associativity=1)


@pytest.fixture
def geometry_8k_2w() -> CacheGeometry:
    """8 KB 2-way cache geometry."""
    return CacheGeometry(size_bytes=8 * 1024, line_bytes=32, associativity=2)


@pytest.fixture
def icache_8k_dm(geometry_8k_dm) -> InstructionCache:
    return InstructionCache(geometry_8k_dm)


@pytest.fixture
def icache_8k_2w(geometry_8k_2w) -> InstructionCache:
    return InstructionCache(geometry_8k_2w)


@pytest.fixture(scope="session")
def small_traces():
    """Short traces of every paper program, generated once."""
    traces = {
        name: generate_trace(name, instructions=TEST_INSTRUCTIONS)
        for name in ("doduc", "espresso", "gcc", "li", "cfront", "groff")
    }
    yield traces
    clear_trace_cache()


@pytest.fixture(scope="session")
def gcc_trace(small_traces) -> Trace:
    return small_traces["gcc"]


def make_trace(events) -> Trace:
    """Build a hand-written trace from (start, count, kind, taken,
    target) tuples; non-branch events may omit the trailing fields."""
    trace = Trace("hand")
    for event in events:
        if len(event) == 2:
            start, count = event
            trace.append(start, count)
        else:
            start, count, kind, taken, target = event
            trace.append(start, count, kind, taken, target)
    return trace


def straight_line(start: int, n_instructions: int) -> Trace:
    """A trace that just falls through *n_instructions* instructions."""
    trace = Trace("straight")
    trace.append(start, n_instructions, BranchKind.NOT_A_BRANCH, False, 0)
    return trace

"""Tests for the auxiliary CLIs and the public package surface."""

import pytest

import repro
from repro.workloads.__main__ import main as workloads_main


class TestWorkloadsCLI:
    def test_prints_table_row(self, capsys):
        assert workloads_main(["li", "--instructions", "20000"]) == 0
        out = capsys.readouterr().out
        assert "li" in out and "events" in out

    def test_validate_flag(self, capsys):
        assert workloads_main(["li", "--instructions", "20000", "--validate"]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_export(self, tmp_path, capsys):
        path = tmp_path / "li.npz"
        assert (
            workloads_main(
                ["li", "--instructions", "20000", "--out", str(path)]
            )
            == 0
        )
        from repro.workloads.trace import Trace

        trace = Trace.load(str(path))
        assert trace.n_instructions >= 20000

    def test_random_layout(self, capsys):
        assert (
            workloads_main(["li", "--instructions", "20000", "--layout", "random"])
            == 0
        )

    def test_rejects_unknown_program(self):
        with pytest.raises(SystemExit):
            workloads_main(["perl"])


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_convenience_simulate(self):
        report = repro.simulate(
            repro.ArchitectureConfig(frontend="btb", entries=128),
            "li",
            instructions=20_000,
        )
        assert report.cpi >= 1.0

    def test_core_classes_importable_from_root(self):
        assert repro.NLSTable is not None
        assert repro.NLSCache is not None
        assert repro.JohnsonSuccessorIndex is not None
        assert repro.BranchTargetBuffer is not None


class TestAnalysisCLI:
    def test_breakdown(self, capsys):
        from repro.analysis.__main__ import main as analysis_main

        assert (
            analysis_main(
                ["breakdown", "--program", "li", "--instructions", "20000"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "CONDITIONAL" in out

    def test_capacity(self, capsys):
        from repro.analysis.__main__ import main as analysis_main

        assert (
            analysis_main(
                [
                    "capacity",
                    "--program",
                    "li",
                    "--structure",
                    "btb",
                    "--instructions",
                    "20000",
                ]
            )
            == 0
        )
        assert "BTB" in capsys.readouterr().out

    def test_sensitivity(self, capsys):
        from repro.analysis.__main__ import main as analysis_main

        assert (
            analysis_main(
                ["sensitivity", "--program", "li", "--instructions", "20000"]
            )
            == 0
        )
        assert "winner" in capsys.readouterr().out


class TestAddressSpaceExperiment:
    def test_btb_grows_nls_constant(self):
        from repro.harness.experiments import address_space_scaling

        result = address_space_scaling()
        assert result.data["btb-128"][64] > result.data["btb-128"][32]
        assert result.data["nls-1024"][64] == result.data["nls-1024"][32]

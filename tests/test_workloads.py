"""Tests for the synthetic-workload substrate: program model,
generator, interpreter, profiles, corpus and Table-1 measurement."""

import pytest

from repro.isa.branches import BranchKind
from repro.workloads.corpus import (
    SCALE_ENV_VAR,
    clear_trace_cache,
    generate_trace,
    trace_scale,
)
from repro.workloads.generator import CallGraph, build_program, zipf_weights
from repro.workloads.interpreter import execute
from repro.workloads.profiles import (
    PROFILES,
    WorkloadProfile,
    get_profile,
    paper_programs,
)
from repro.workloads.program import (
    Block,
    CallSite,
    ConditionalSite,
    IndirectSite,
    LoopSite,
    Procedure,
    ReturnSite,
    SyntheticProgram,
    UnconditionalSite,
)
from repro.workloads.stats import measure


class TestProgramModel:
    def make_procedure(self):
        return Procedure(
            name="p",
            blocks=[
                Block(4, ConditionalSite(target_block=2, taken_prob=0.5), address=0x1000),
                Block(2, UnconditionalSite(target_block=2), address=0x1010),
                Block(1, ReturnSite(), address=0x1018),
            ],
        )

    def test_procedure_accessors(self):
        procedure = self.make_procedure()
        assert procedure.entry == 0x1000
        assert procedure.n_instructions == 7
        assert procedure.size_bytes == 28

    def test_block_break_address(self):
        block = Block(4, ReturnSite(), address=0x1000)
        assert block.break_address == 0x100C

    def test_check_accepts_valid(self):
        self.make_procedure().check(n_procedures=1)

    def test_check_rejects_missing_return(self):
        procedure = Procedure(
            name="p",
            blocks=[Block(1, UnconditionalSite(target_block=0), address=0x1000)],
        )
        with pytest.raises(ValueError):
            procedure.check(1)

    def test_check_rejects_out_of_range_target(self):
        procedure = Procedure(
            name="p",
            blocks=[
                Block(1, ConditionalSite(target_block=9, taken_prob=0.5), address=0x1000),
                Block(1, ReturnSite(), address=0x1004),
            ],
        )
        with pytest.raises(ValueError):
            procedure.check(1)

    def test_check_rejects_forward_loop_head(self):
        procedure = Procedure(
            name="p",
            blocks=[
                Block(1, LoopSite(head_block=1, continue_prob=0.5), address=0x1000),
                Block(1, ReturnSite(), address=0x1004),
            ],
        )
        with pytest.raises(ValueError):
            procedure.check(1)

    def test_indirect_site_validation(self):
        with pytest.raises(ValueError):
            IndirectSite(target_blocks=(1, 2), weights=(0.5,))
        with pytest.raises(ValueError):
            IndirectSite(target_blocks=(), weights=())

    def test_program_overlap_detection(self):
        a = self.make_procedure()
        b = self.make_procedure()  # same addresses -> overlap
        program = SyntheticProgram(name="x", procedures=[a, b])
        with pytest.raises(ValueError):
            program.check()


class TestGenerator:
    def test_zipf_weights_normalised_and_decreasing(self):
        weights = zipf_weights(10, 1.2)
        assert sum(weights) == pytest.approx(1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_build_program_is_deterministic(self):
        profile = get_profile("li")
        a = build_program(profile, seed=7)
        b = build_program(profile, seed=7)
        assert a.code_bytes == b.code_bytes
        assert [p.entry for p in a.procedures] == [p.entry for p in b.procedures]

    def test_different_seeds_differ(self):
        profile = get_profile("li")
        a = build_program(profile, seed=7)
        b = build_program(profile, seed=8)
        assert a.code_bytes != b.code_bytes

    def test_all_profiles_build_valid_programs(self):
        for name in paper_programs():
            build_program(get_profile(name)).check()

    def test_random_layout_keeps_callee_indices(self):
        profile = get_profile("li")
        natural = build_program(profile, layout="natural")
        shuffled = build_program(profile, layout="random")
        # procedure identities (entry order in the list) are stable
        assert len(natural.procedures) == len(shuffled.procedures)
        shuffled.check()
        # but placement differs
        assert [p.entry for p in natural.procedures] != [
            p.entry for p in shuffled.procedures
        ]

    def test_rejects_unknown_layout(self):
        with pytest.raises(ValueError):
            build_program(get_profile("li"), layout="hot-cold")

    def test_call_graph_is_forward_dag(self):
        program = build_program(get_profile("gcc"))
        for index, procedure in enumerate(program.procedures):
            for block in procedure.blocks:
                if isinstance(block.site, CallSite):
                    assert block.site.callee > index or index == 0

    def test_leaf_band_is_small(self):
        profile = get_profile("gcc")
        program = build_program(profile)
        graph_leaf_start = int(round(profile.n_procedures * (1 - profile.leaf_fraction)))
        leaf_sizes = [
            len(p.blocks) for p in program.procedures[graph_leaf_start:]
        ]
        assert max(leaf_sizes) <= profile.leaf_blocks[1] + 2

    def test_callgraph_interior_callee_bounds(self):
        import random

        profile = get_profile("li")
        graph = CallGraph(profile, random.Random(3))
        for proc_index in (1, 5, profile.n_procedures - 2):
            for _ in range(50):
                callee = graph.interior_callee(proc_index)
                assert callee is None or proc_index < callee < profile.n_procedures
        assert graph.interior_callee(profile.n_procedures - 1) is None


class TestInterpreter:
    def test_trace_is_consistent(self):
        profile = get_profile("espresso")
        program = build_program(profile)
        trace = execute(program, 30_000, seed=1)
        trace.validate()

    def test_budget_respected_within_one_block(self):
        profile = get_profile("espresso")
        program = build_program(profile)
        trace = execute(program, 10_000, seed=1)
        assert 10_000 <= trace.n_instructions < 10_000 + 200

    def test_deterministic_given_seed(self):
        program = build_program(get_profile("li"))
        a = execute(program, 20_000, seed=5)
        b = execute(program, 20_000, seed=5)
        assert a.starts == b.starts and a.takens == b.takens

    def test_calls_and_returns_balance(self):
        program = build_program(get_profile("li"))
        trace = execute(program, 50_000, seed=2)
        calls = sum(1 for k in trace.kinds if k == int(BranchKind.CALL))
        returns = sum(1 for k in trace.kinds if k == int(BranchKind.RETURN))
        assert abs(calls - returns) <= 64  # open frames at trace end

    def test_counted_loops_have_exact_trip_counts(self):
        # build a tiny program by hand with one counted loop
        body = Procedure(
            name="f",
            blocks=[
                Block(2, LoopSite(head_block=0, continue_prob=0.0, fixed_trips=4)),
                Block(1, ReturnSite()),
            ],
        )
        main = Procedure(
            name="main",
            blocks=[
                Block(1, CallSite(callee=1)),
                Block(1, ReturnSite()),
            ],
        )
        address = 0x1000
        for procedure in (main, body):
            for block in procedure.blocks:
                block.address = address
                address += block.size_bytes
        program = SyntheticProgram(name="loop", procedures=[main, body])
        program.check()
        trace = execute(program, 1_000, seed=0)
        loop_pc = body.blocks[0].break_address
        outcomes = [
            trace.takens[i]
            for i in range(len(trace.starts))
            if trace.starts[i] + (trace.counts[i] - 1) * 4 == loop_pc
        ]
        # fixed_trips=4: taken,taken,taken,not-taken per entry
        assert outcomes[:4] == [True, True, True, False]

    def test_rejects_zero_budget(self):
        program = build_program(get_profile("li"))
        with pytest.raises(ValueError):
            execute(program, 0)


class TestProfiles:
    def test_registry_has_paper_and_server_programs(self):
        from repro.workloads.profiles import server_programs

        assert set(paper_programs()) <= set(PROFILES)
        assert set(server_programs()) <= set(PROFILES)
        assert len(paper_programs()) == 6
        assert len(PROFILES) == 8

    def test_get_profile_unknown(self):
        with pytest.raises(ValueError):
            get_profile("perl")

    def test_site_mix_normalised(self):
        for profile in PROFILES.values():
            assert sum(profile.site_mix.values()) == pytest.approx(1.0)

    def test_paper_attributes_present(self):
        # only the six Table-1 programs carry a paper reference row;
        # the modern-server profiles are deliberately paper-free
        for name in paper_programs():
            profile = PROFILES[name]
            assert profile.paper is not None
            assert profile.paper.pct_breaks > 0
        from repro.workloads.profiles import server_programs

        for name in server_programs():
            assert PROFILES[name].paper is None

    def test_validation_rejects_bad_profiles(self):
        base = get_profile("li")
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="x",
                description="",
                n_procedures=1,
                blocks_per_procedure=(5, 10),
                mean_block_instructions=5,
                main_call_sites=10,
                zipf_alpha=1.0,
                frac_conditional=1,
                frac_loop=0,
                frac_unconditional=0,
                frac_call=0,
                frac_indirect=0,
                taken_bias_classes=base.taken_bias_classes,
                loop_iterations_log_mean=1.0,
                loop_iterations_log_sigma=0.5,
            )


class TestStats:
    def test_measure_simple_trace(self):
        from repro.workloads.trace import Trace

        trace = Trace("simple")
        for _ in range(3):
            trace.append(0x1000, 8, BranchKind.CONDITIONAL, True, 0x1000)
        trace.append(0x1000, 8, BranchKind.CONDITIONAL, False, 0x1000)
        trace.append(0x1020, 2)
        attributes = measure(trace)
        assert attributes.instructions == 34
        assert attributes.q50 == 1
        assert attributes.q100 == 1
        assert attributes.pct_taken == pytest.approx(75.0)
        assert attributes.pct_cbr == pytest.approx(100.0)

    def test_quantiles_ordered(self, small_traces):
        for trace in small_traces.values():
            attributes = measure(trace)
            assert (
                attributes.q50
                <= attributes.q90
                <= attributes.q99
                <= attributes.q100
            )

    def test_mix_sums_to_100(self, small_traces):
        attributes = measure(small_traces["groff"])
        total = (
            attributes.pct_cbr
            + attributes.pct_ij
            + attributes.pct_br
            + attributes.pct_call
            + attributes.pct_ret
        )
        assert total == pytest.approx(100.0)

    def test_static_count_requires_program(self, small_traces):
        attributes = measure(small_traces["li"])
        assert attributes.static_conditionals is None
        program = build_program(get_profile("li"))
        attributes = measure(small_traces["li"], program)
        assert attributes.static_conditionals > 0

    def test_row_and_header_align(self, small_traces):
        from repro.workloads.stats import TraceAttributes

        attributes = measure(small_traces["li"])
        assert len(attributes.row()) > 0
        assert TraceAttributes.header().split()[0] == "program"


class TestCorpus:
    def test_memoisation(self):
        clear_trace_cache()
        a = generate_trace("li", instructions=5_000)
        b = generate_trace("li", instructions=5_000)
        assert a is b
        clear_trace_cache()
        c = generate_trace("li", instructions=5_000)
        assert c is not a

    def test_different_budgets_are_distinct(self):
        a = generate_trace("li", instructions=5_000)
        b = generate_trace("li", instructions=6_000)
        assert a is not b

    def test_scale_env_var(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "0.5")
        assert trace_scale() == 0.5
        trace = generate_trace("li", instructions=10_000)
        assert trace.n_instructions < 6_000

    def test_scale_env_var_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "fast")
        with pytest.raises(ValueError):
            trace_scale()
        monkeypatch.setenv(SCALE_ENV_VAR, "-1")
        with pytest.raises(ValueError):
            trace_scale()

    def test_unknown_program(self):
        with pytest.raises(ValueError):
            generate_trace("perl")


class TestCalibration:
    """Loose checks that the measured workloads keep the paper's
    per-program character (exact values recorded in EXPERIMENTS.md)."""

    def test_branch_density_ordering(self, small_traces):
        attrs = {name: measure(trace) for name, trace in small_traces.items()}
        # doduc is by far the least branchy program (Table 1)
        assert attrs["doduc"].pct_breaks < min(
            a.pct_breaks for n, a in attrs.items() if n != "doduc"
        )

    def test_espresso_is_conditional_dominated(self, small_traces):
        attributes = measure(small_traces["espresso"])
        assert attributes.pct_cbr > 85.0

    def test_li_is_call_heavy(self, small_traces):
        attrs = {name: measure(trace) for name, trace in small_traces.items()}
        assert attrs["li"].pct_call > 1.5 * attrs["gcc"].pct_call

    def test_gcc_has_most_active_sites(self, small_traces):
        attrs = {name: measure(trace) for name, trace in small_traces.items()}
        assert attrs["gcc"].q100 == max(a.q100 for a in attrs.values())

    def test_taken_rates_in_paper_band(self, small_traces):
        for name, trace in small_traces.items():
            attributes = measure(trace)
            assert 30.0 < attributes.pct_taken < 70.0, name


class TestFootprint:
    def test_simple_block(self):
        from repro.workloads.stats import footprint
        from repro.workloads.trace import Trace

        trace = Trace("t")
        trace.append(0x1000, 16, BranchKind.UNCONDITIONAL, True, 0x1000)
        result = footprint(trace)
        assert result.distinct_lines == 2
        assert result.distinct_branch_sites == 1
        assert result.code_bytes_touched == 64

    def test_repeats_do_not_grow_footprint(self):
        from repro.workloads.stats import footprint
        from repro.workloads.trace import Trace

        trace = Trace("t")
        for _ in range(10):
            trace.append(0x1000, 8, BranchKind.UNCONDITIONAL, True, 0x1000)
        assert footprint(trace).distinct_lines == 1

    def test_program_footprints_ordered(self, small_traces):
        from repro.workloads.stats import footprint

        prints = {name: footprint(trace) for name, trace in small_traces.items()}
        # gcc touches more code than doduc at the same (short) trace
        # length; the gap widens further at full scale
        assert prints["gcc"].distinct_lines > 1.2 * prints["doduc"].distinct_lines
        assert (
            prints["gcc"].distinct_branch_sites
            > 1.5 * prints["doduc"].distinct_branch_sites
        )

    def test_cache_kb_helper(self):
        from repro.workloads.stats import TraceFootprint

        fp = TraceFootprint(
            distinct_lines=512, distinct_branch_sites=10, code_bytes_touched=512 * 32
        )
        assert fp.lines_for_cache_kb() == 16.0


class TestValidation:
    def test_field_comparison_errors(self):
        from repro.workloads.validation import FieldComparison

        comparison = FieldComparison("x", measured=11.0, paper=10.0)
        assert comparison.absolute_error == pytest.approx(1.0)
        assert comparison.relative_error == pytest.approx(0.1)

    def test_relative_error_near_zero_paper(self):
        from repro.workloads.validation import FieldComparison

        comparison = FieldComparison("x", measured=0.5, paper=0.0)
        assert comparison.relative_error == pytest.approx(0.5)

    def test_rank_correlation_perfect_and_inverted(self):
        from repro.workloads.validation import rank_correlation

        assert rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert rank_correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_rank_correlation_rejects_bad_input(self):
        from repro.workloads.validation import rank_correlation

        with pytest.raises(ValueError):
            rank_correlation([1], [2])
        with pytest.raises(ValueError):
            rank_correlation([1, 2], [1, 2, 3])

    def test_summary_on_real_traces(self, small_traces):
        from repro.workloads.validation import summarise

        measured = {
            name: measure(trace, build_program(get_profile(name)))
            for name, trace in small_traces.items()
        }
        papers = {name: get_profile(name).paper for name in small_traces}
        summary = summarise(measured, papers)
        assert summary.mean_absolute_scalar_error < 20.0
        # the break-density ordering must agree strongly with the paper
        assert summary.rank_correlations["%breaks"] > 0.5
        program, field, error = summary.worst_field
        assert program in small_traces

    def test_calibration_experiment(self):
        from repro.harness.experiments import calibration

        result = calibration(programs=("li", "doduc"), instructions=30_000)
        assert "mean_abs_error" in result.data
        assert "li" in result.text

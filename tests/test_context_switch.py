"""Tests for context-switch (periodic flush) modelling."""

import pytest

from repro.harness.config import ArchitectureConfig
from repro.harness.experiments import context_switch
from repro.harness.runner import simulate
from repro.isa.branches import BranchKind
from repro.predictors.pht import (
    BimodalPredictor,
    CombiningPredictor,
    GAgPredictor,
    GSharePredictor,
    PAgPredictor,
    PanDegeneratePredictor,
)
from repro.workloads.trace import Trace

SMALL = 60_000


class TestPredictorReset:
    @pytest.mark.parametrize(
        "cls",
        [
            GSharePredictor,
            PanDegeneratePredictor,
            GAgPredictor,
            BimodalPredictor,
            PAgPredictor,
            CombiningPredictor,
        ],
    )
    def test_reset_forgets_training(self, cls):
        predictor = cls(entries=256)
        pc = 0x4000
        for _ in range(20):
            predictor.update(pc, True)
        assert predictor.predict(pc)
        predictor.reset()
        assert not predictor.predict(pc)  # back to weakly not-taken


class TestFrontEndFlush:
    @pytest.mark.parametrize(
        "frontend",
        ["btb", "coupled-btb", "nls-table", "nls-cache", "johnson", "steely-sager"],
    )
    def test_flush_method_exists_and_runs(self, frontend):
        engine = ArchitectureConfig(frontend=frontend).build()
        flush = getattr(engine.frontend, "flush", None)
        assert flush is not None
        flush()  # must not raise on a fresh structure


class TestEngineFlushInterval:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(frontend="btb", flush_interval=0).build()

    def test_flush_reintroduces_cold_misfetches(self):
        trace = Trace("loop")
        for _ in range(100):
            trace.append(0x1000, 8, BranchKind.UNCONDITIONAL, True, 0x1000)
        never = ArchitectureConfig(frontend="btb", entries=128).build().run(trace)
        flushed = (
            ArchitectureConfig(frontend="btb", entries=128, flush_interval=80)
            .build()
            .run(trace)
        )
        assert never.misfetches == 1  # one cold start
        assert flushed.misfetches > 5  # one per flush

    def test_flush_also_cools_the_cache(self):
        never = simulate(
            ArchitectureConfig(frontend="nls-table", entries=1024),
            "li",
            instructions=SMALL,
            warmup_fraction=0.0,
        )
        flushed = simulate(
            ArchitectureConfig(
                frontend="nls-table", entries=1024, flush_interval=10_000
            ),
            "li",
            instructions=SMALL,
            warmup_fraction=0.0,
        )
        assert flushed.icache_misses > never.icache_misses


class TestExperiment:
    def test_bep_monotone_in_flush_frequency(self):
        result = context_switch(
            programs=("li",), instructions=SMALL, intervals=(None, 10_000)
        )
        never = result.data["never"]
        frequent = result.data["every 10,000"]
        for name in never:
            assert frequent[name] >= never[name]

"""Tests for the branch target buffer."""

import pytest

from repro.isa.branches import BranchKind
from repro.predictors.btb import BranchTargetBuffer, CoupledBTB


class TestLookupAndAllocate:
    def test_miss_on_cold(self):
        btb = BranchTargetBuffer(entries=128)
        assert btb.lookup(0x1000) is None

    def test_taken_branch_allocates(self):
        btb = BranchTargetBuffer(entries=128)
        btb.record_taken(0x1000, BranchKind.CONDITIONAL, 0x2000)
        entry = btb.lookup(0x1000)
        assert entry is not None
        assert entry.target == 0x2000
        assert entry.kind == BranchKind.CONDITIONAL

    def test_not_taken_never_allocates(self):
        # "we store only taken branches in the BTB" (S3)
        btb = BranchTargetBuffer(entries=128)
        btb.record_not_taken(0x1000)
        assert btb.lookup(0x1000) is None

    def test_not_taken_preserves_existing_entry(self):
        # "If a branch is not taken while it is in the BTB, we leave
        # the entry in the BTB" (S3)
        btb = BranchTargetBuffer(entries=128)
        btb.record_taken(0x1000, BranchKind.CONDITIONAL, 0x2000)
        btb.record_not_taken(0x1000)
        entry = btb.lookup(0x1000)
        assert entry is not None and entry.target == 0x2000

    def test_taken_updates_moving_target(self):
        btb = BranchTargetBuffer(entries=128)
        btb.record_taken(0x1000, BranchKind.INDIRECT, 0x2000)
        btb.record_taken(0x1000, BranchKind.INDIRECT, 0x3000)
        assert btb.lookup(0x1000).target == 0x3000

    def test_distinct_pcs_distinct_entries(self):
        btb = BranchTargetBuffer(entries=128)
        btb.record_taken(0x1000, BranchKind.CALL, 0x2000)
        btb.record_taken(0x1004, BranchKind.RETURN, 0x3000)
        assert btb.lookup(0x1000).kind == BranchKind.CALL
        assert btb.lookup(0x1004).kind == BranchKind.RETURN


class TestConflictsAndLRU:
    def conflicting(self, btb, n):
        """n addresses mapping to set 0 of *btb*."""
        stride = btb.n_sets * 4
        return [0x10000 + i * stride for i in range(n)]

    def test_direct_mapped_conflict(self):
        btb = BranchTargetBuffer(entries=128, associativity=1)
        a, b = self.conflicting(btb, 2)
        btb.record_taken(a, BranchKind.CONDITIONAL, 0x2000)
        btb.record_taken(b, BranchKind.CONDITIONAL, 0x3000)
        assert btb.lookup(a) is None
        assert btb.lookup(b).target == 0x3000

    def test_two_way_holds_two(self):
        btb = BranchTargetBuffer(entries=128, associativity=2)
        a, b = self.conflicting(btb, 2)
        btb.record_taken(a, BranchKind.CONDITIONAL, 0x2000)
        btb.record_taken(b, BranchKind.CONDITIONAL, 0x3000)
        assert btb.lookup(a).target == 0x2000
        assert btb.lookup(b).target == 0x3000

    def test_lru_eviction_respects_lookups(self):
        btb = BranchTargetBuffer(entries=128, associativity=2)
        a, b, c = self.conflicting(btb, 3)
        btb.record_taken(a, BranchKind.CONDITIONAL, 0x2000)
        btb.record_taken(b, BranchKind.CONDITIONAL, 0x3000)
        btb.lookup(a)  # refresh a: b becomes LRU
        btb.record_taken(c, BranchKind.CONDITIONAL, 0x4000)
        assert btb.probe(a) is not None
        assert btb.probe(b) is None
        assert btb.probe(c) is not None

    def test_occupancy_bounded_by_entries(self):
        btb = BranchTargetBuffer(entries=8, associativity=2)
        for i in range(100):
            btb.record_taken(0x1000 + i * 4, BranchKind.CONDITIONAL, 0x2000)
        assert btb.occupancy() <= 8


class TestStatistics:
    def test_hit_rate(self):
        btb = BranchTargetBuffer(entries=128)
        btb.record_taken(0x1000, BranchKind.CONDITIONAL, 0x2000)
        btb.lookup(0x1000)
        btb.lookup(0x2000)
        assert btb.hit_rate == pytest.approx(0.5)

    def test_probe_does_not_count(self):
        btb = BranchTargetBuffer(entries=128)
        btb.probe(0x1000)
        assert btb.lookups == 0

    def test_flush(self):
        btb = BranchTargetBuffer(entries=128)
        btb.record_taken(0x1000, BranchKind.CONDITIONAL, 0x2000)
        btb.flush()
        assert btb.probe(0x1000) is None


class TestShapes:
    @pytest.mark.parametrize("entries,assoc", [(100, 1), (128, 3), (2, 4), (0, 1)])
    def test_rejects_bad_shapes(self, entries, assoc):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=entries, associativity=assoc)

    def test_paper_shapes(self):
        for entries in (128, 256):
            for assoc in (1, 2, 4):
                btb = BranchTargetBuffer(entries, assoc)
                assert btb.n_sets == entries // assoc


class TestCoupledBTB:
    def test_counter_allocated_weakly_taken(self):
        btb = CoupledBTB(entries=128)
        btb.record_taken(0x1000, BranchKind.CONDITIONAL, 0x2000)
        assert btb.predict_direction(0x1000) is True

    def test_miss_returns_none_for_static_fallback(self):
        # coupled designs must fall back to static prediction (S2)
        btb = CoupledBTB(entries=128)
        assert btb.predict_direction(0x1000) is None

    def test_not_taken_trains_counter(self):
        btb = CoupledBTB(entries=128)
        btb.record_taken(0x1000, BranchKind.CONDITIONAL, 0x2000)
        btb.record_not_taken(0x1000)
        btb.record_not_taken(0x1000)
        assert btb.predict_direction(0x1000) is False

    def test_non_conditional_entries_do_not_predict_direction(self):
        btb = CoupledBTB(entries=128)
        btb.record_taken(0x1000, BranchKind.CALL, 0x2000)
        assert btb.predict_direction(0x1000) is None

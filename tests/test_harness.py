"""Tests for the harness: configs, runner, table rendering, CLI."""

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.config import FRONTENDS, ArchitectureConfig
from repro.harness.runner import run_config, simulate, sweep
from repro.harness.tables import bep_chart, format_table, stacked_bep_bar
from repro.metrics.report import SimulationReport

SMALL = 20_000


class TestArchitectureConfig:
    def test_defaults(self):
        config = ArchitectureConfig()
        assert config.frontend == "nls-table"
        assert config.geometry.size_bytes == 16 * 1024

    def test_rejects_unknown_frontend(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(frontend="ghb")

    def test_rejects_tiny_cache(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(cache_kb=0)

    @pytest.mark.parametrize("frontend", FRONTENDS)
    def test_build_every_frontend(self, frontend):
        engine = ArchitectureConfig(frontend=frontend).build()
        assert engine.cache.geometry.size_bytes == 16 * 1024

    def test_build_is_fresh_each_time(self):
        config = ArchitectureConfig(frontend="btb")
        a = config.build()
        b = config.build()
        assert a.cache is not b.cache
        assert a.frontend is not b.frontend

    def test_labels_are_distinct(self):
        labels = {
            ArchitectureConfig(frontend=frontend).label() for frontend in FRONTENDS
        }
        assert len(labels) == len(FRONTENDS)

    def test_with_cache(self):
        config = ArchitectureConfig(cache_kb=8).with_cache(32, 4)
        assert config.cache_kb == 32
        assert config.cache_assoc == 4

    def test_penalty_overrides(self):
        config = ArchitectureConfig(mispredict_penalty=6.0)
        assert config.penalties.mispredict == 6.0

    def test_direction_override_builds(self):
        engine = ArchitectureConfig(direction="bimodal").build()
        assert engine.direction.__class__.__name__ == "BimodalPredictor"


class TestRunner:
    def test_simulate_by_name(self):
        report = simulate(
            ArchitectureConfig(frontend="btb", entries=128), "li", instructions=SMALL
        )
        assert isinstance(report, SimulationReport)
        assert report.program == "li"
        assert report.n_breaks > 0

    def test_simulate_accepts_trace(self, small_traces):
        report = simulate(ArchitectureConfig(), small_traces["li"])
        assert report.program == "li"

    def test_run_config_label_default(self, small_traces):
        config = ArchitectureConfig(frontend="btb")
        report = run_config(config, small_traces["li"])
        assert report.label == config.label()

    def test_sweep_shape(self):
        configs = [
            ArchitectureConfig(frontend="btb", entries=128),
            ArchitectureConfig(frontend="nls-table", entries=1024),
        ]
        results = sweep(configs, ["li", "doduc"], instructions=SMALL)
        assert len(results) == 2
        for reports in results.values():
            assert [r.program for r in reports] == ["li", "doduc"]

    def test_deterministic_reports(self):
        config = ArchitectureConfig(frontend="nls-table")
        a = simulate(config, "li", instructions=SMALL)
        b = simulate(config, "li", instructions=SMALL)
        assert a.misfetches == b.misfetches
        assert a.mispredicts == b.mispredicts


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.startswith("T\n")

    def test_stacked_bar_composition(self):
        bar = stacked_bep_bar(0.5, 1.0, scale=30, maximum=1.5)
        assert bar.count("#") == 20  # mispredict part
        assert bar.count("+") == 10  # misfetch part

    def test_bep_chart_contains_values(self):
        text = bep_chart([("a", 0.1, 0.2), ("b", 0.0, 0.3)])
        assert "0.300" in text
        assert "a" in text and "b" in text


class TestCLI:
    def test_fig3_runs(self, capsys):
        assert cli_main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "NLS-table" in out and "BTB" in out

    def test_fig6_runs(self, capsys):
        assert cli_main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "access" in out

    def test_simulation_experiment_with_overrides(self, capsys):
        assert (
            cli_main(
                [
                    "johnson",
                    "--programs",
                    "li",
                    "--instructions",
                    str(SMALL),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Johnson" in out

    def test_out_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert cli_main(["fig3", "--out", str(out_dir)]) == 0
        assert (out_dir / "fig3.txt").exists()

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])


class TestMiscRendering:
    def test_bep_chart_explicit_maximum(self):
        text = bep_chart([("x", 0.5, 0.5)], maximum=2.0, scale=20)
        # 1.0 of 2.0 at scale 20 -> 10 cells split 5/5
        line = text.splitlines()[-1]
        assert line.count("#") == 5 and line.count("+") == 5

    def test_structure_cost_str(self):
        from repro.cost.rbe import RBEModel
        from repro.cache.geometry import CacheGeometry

        cost = RBEModel().nls_table_cost(1024, CacheGeometry(16 * 1024, 32, 1))
        assert "NLS-table" in str(cost)
        assert "RBE" in str(cost)

    def test_report_summary_without_kind_breakdown(self):
        report = SimulationReport(
            label="x",
            program="y",
            n_instructions=100,
            n_breaks=10,
            misfetches=1,
            mispredicts=1,
            icache_accesses=20,
            icache_misses=2,
        )
        assert "BEP" in report.summary()


class TestCLIAll:
    def test_all_with_restricted_registry(self, capsys, monkeypatch, tmp_path):
        import repro.harness.cli as cli
        from repro.harness.experiments import fig6

        monkeypatch.setattr(cli, "EXPERIMENTS", {"fig6": fig6})
        assert cli.main(["all", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig6.txt").exists()
        assert "access" in capsys.readouterr().out

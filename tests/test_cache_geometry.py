"""Tests for cache geometry and address-field arithmetic."""

import pytest

from repro.cache.geometry import CacheGeometry


class TestConstruction:
    def test_paper_default(self):
        g = CacheGeometry(16 * 1024, 32, 1)
        assert g.n_lines == 512
        assert g.n_sets == 512
        assert g.instructions_per_line == 8

    def test_four_way(self):
        g = CacheGeometry(16 * 1024, 32, 4)
        assert g.n_lines == 512
        assert g.n_sets == 128

    @pytest.mark.parametrize(
        "size,line,assoc",
        [(1000, 32, 1), (8192, 24, 1), (8192, 32, 3), (32, 32, 4)],
    )
    def test_rejects_bad_shapes(self, size, line, assoc):
        with pytest.raises(ValueError):
            CacheGeometry(size, line, assoc)

    def test_rejects_line_smaller_than_instruction(self):
        with pytest.raises(ValueError):
            CacheGeometry(8192, 2, 1)


class TestBitWidths:
    def test_direct_mapped_8k(self):
        g = CacheGeometry(8 * 1024, 32, 1)
        assert g.offset_bits == 5
        assert g.set_index_bits == 8
        assert g.way_bits == 0
        assert g.instruction_offset_bits == 3
        assert g.line_field_bits == 11

    def test_line_field_grows_one_bit_per_cache_doubling(self):
        # the paper's logarithmic NLS-table growth argument (S6)
        widths = [
            CacheGeometry(kb * 1024, 32, 1).line_field_bits
            for kb in (8, 16, 32, 64)
        ]
        assert widths == [11, 12, 13, 14]

    def test_associativity_shrinks_set_bits_adds_way_bits(self):
        dm = CacheGeometry(8 * 1024, 32, 1)
        w4 = CacheGeometry(8 * 1024, 32, 4)
        assert w4.set_index_bits == dm.set_index_bits - 2
        assert w4.way_bits == 2


class TestAddressSlicing:
    def test_set_index_and_tag_roundtrip(self):
        g = CacheGeometry(8 * 1024, 32, 1)
        address = 0x0012_3456 & ~0x3
        line = g.line_address(address)
        reconstructed = (
            (g.tag(address) << (g.set_index_bits + g.offset_bits))
            | (g.set_index(address) << g.offset_bits)
        )
        assert reconstructed == line

    def test_line_address_masks_offset(self):
        g = CacheGeometry(8 * 1024, 32, 1)
        assert g.line_address(0x1000) == 0x1000
        assert g.line_address(0x101C) == 0x1000
        assert g.line_address(0x1020) == 0x1020

    def test_instruction_offset(self):
        g = CacheGeometry(8 * 1024, 32, 1)
        assert g.instruction_offset(0x1000) == 0
        assert g.instruction_offset(0x1004) == 1
        assert g.instruction_offset(0x101C) == 7

    def test_line_field_concatenates_set_and_offset(self):
        g = CacheGeometry(8 * 1024, 32, 1)
        address = 0x1004
        expected = (g.set_index(address) << 3) | 1
        assert g.line_field(address) == expected

    def test_line_field_distinguishes_instructions_in_same_line(self):
        g = CacheGeometry(8 * 1024, 32, 1)
        assert g.line_field(0x1000) != g.line_field(0x1004)

    def test_line_field_aliases_across_tag_distance(self):
        # two addresses one cache-size apart share the line field: the
        # NLS pointer cannot tell them apart (the misfetch mechanism)
        g = CacheGeometry(8 * 1024, 32, 1)
        assert g.line_field(0x1000) == g.line_field(0x1000 + 8 * 1024)

    def test_next_line_address(self):
        g = CacheGeometry(8 * 1024, 32, 1)
        assert g.next_line_address(0x1004) == 0x1020

    @pytest.mark.parametrize(
        "start,n,expected",
        [
            (0x1000, 1, 1),
            (0x1000, 8, 1),
            (0x1000, 9, 2),
            (0x101C, 2, 2),
            (0x1000, 0, 0),
            (0x1004, 8, 2),
        ],
    )
    def test_lines_spanned(self, start, n, expected):
        g = CacheGeometry(8 * 1024, 32, 1)
        assert g.lines_spanned(start, n) == expected

"""Tests for the NLS-cache (line-coupled predictors)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.core.nls_cache import NLSCache
from repro.core.nls_entry import NLSEntryType
from repro.isa.branches import BranchKind


def make(associativity=1, per_line=2, policy="partition", size_kb=8):
    cache = InstructionCache(CacheGeometry(size_kb * 1024, 32, associativity))
    return cache, NLSCache(cache, predictors_per_line=per_line, policy=policy)


class TestLookupUpdate:
    def test_cold_invalid(self):
        cache, nls = make()
        cache.access(0x1000)
        assert not nls.lookup(0x1000).valid

    def test_trains_and_predicts(self):
        cache, nls = make()
        cache.access(0x1000)
        nls.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0)
        prediction = nls.lookup(0x1000)
        assert prediction.valid
        assert prediction.type == NLSEntryType.CONDITIONAL
        assert prediction.line_field == cache.geometry.line_field(0x2000)

    def test_lookup_without_resident_line_is_invalid(self):
        cache, nls = make()
        assert not nls.lookup(0x1000).valid

    def test_update_dropped_when_line_not_resident(self):
        cache, nls = make()
        nls.update(0x1000, BranchKind.CALL, True, 0x2000, 0)
        cache.access(0x1000)
        assert not nls.lookup(0x1000).valid

    def test_not_taken_preserves_pointer(self):
        cache, nls = make()
        cache.access(0x1000)
        nls.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0)
        nls.update(0x1000, BranchKind.CONDITIONAL, False)
        assert nls.lookup(0x1000).line_field == cache.geometry.line_field(0x2000)


class TestEvictionCoupling:
    def test_eviction_discards_predictors(self):
        # the key NLS-cache weakness: "prediction information
        # associated with a replaced cache line is discarded" (S4.1)
        cache, nls = make()
        g = cache.geometry
        a = 0x1000
        b = a + g.size_bytes  # same set, different tag
        cache.access(a)
        nls.update(a, BranchKind.CONDITIONAL, True, 0x2000, 0)
        cache.access(b)  # evicts a
        cache.access(a)  # refill: predictors are gone
        assert not nls.lookup(a).valid
        assert nls.invalidations >= 1

    def test_flush_clears_all(self):
        cache, nls = make()
        cache.access(0x1000)
        nls.update(0x1000, BranchKind.CALL, True, 0x2000, 0)
        nls.flush()
        assert nls.valid_entries() == 0


class TestPartitionPolicy:
    def test_two_predictors_cover_half_lines_each(self):
        cache, nls = make(per_line=2)
        cache.access(0x1000)
        # instructions 0-3 share predictor 0; 4-7 share predictor 1
        nls.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0)
        nls.update(0x1010, BranchKind.CALL, True, 0x3000, 0)
        assert nls.lookup(0x1000).type == NLSEntryType.CONDITIONAL
        assert nls.lookup(0x1010).type == NLSEntryType.OTHER

    def test_same_half_branches_collide(self):
        cache, nls = make(per_line=2)
        cache.access(0x1000)
        nls.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0)
        nls.update(0x1004, BranchKind.CALL, True, 0x3000, 0)
        # 0x1000 now reads 0x1004's entry (shared slot, no tag)
        assert nls.lookup(0x1000).type == NLSEntryType.OTHER

    def test_four_predictors_per_line(self):
        cache, nls = make(per_line=4)
        cache.access(0x1000)
        for offset, kind in ((0x0, BranchKind.CONDITIONAL), (0x8, BranchKind.CALL)):
            nls.update(0x1000 + offset, kind, True, 0x2000, 0)
        assert nls.lookup(0x1000).type == NLSEntryType.CONDITIONAL
        assert nls.lookup(0x1008).type == NLSEntryType.OTHER


class TestLRUPolicy:
    def test_offset_tagged_lookup(self):
        cache, nls = make(per_line=2, policy="lru")
        cache.access(0x1000)
        nls.update(0x1004, BranchKind.CALL, True, 0x2000, 0)
        # a different offset has no trained slot -> invalid
        assert not nls.lookup(0x1000).valid
        assert nls.lookup(0x1004).valid

    def test_lru_replacement_among_slots(self):
        cache, nls = make(per_line=2, policy="lru")
        cache.access(0x1000)
        nls.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0)
        nls.update(0x1004, BranchKind.CALL, True, 0x2100, 0)
        nls.lookup(0x1000)  # refresh slot for offset 0
        nls.update(0x1008, BranchKind.RETURN, True, 0x2200, 0)  # evicts offset 1
        assert nls.lookup(0x1000).valid
        assert not nls.lookup(0x1004).valid
        assert nls.lookup(0x1008).valid


class TestAssociativeCarrier:
    def test_predictors_follow_their_way(self):
        cache, nls = make(associativity=2)
        g = cache.geometry
        a = 0x1000
        b = a + g.size_bytes // 2  # same set, other way
        way_a = cache.access(a).way
        way_b = cache.access(b).way
        assert way_a != way_b
        nls.update(a, BranchKind.CONDITIONAL, True, 0x2000, 0)
        assert nls.lookup(a, way_a).valid
        assert not nls.lookup(b, way_b).valid


class TestValidation:
    def test_rejects_bad_predictor_count(self):
        cache = InstructionCache(CacheGeometry(8 * 1024, 32, 1))
        with pytest.raises(ValueError):
            NLSCache(cache, predictors_per_line=0)
        with pytest.raises(ValueError):
            NLSCache(cache, predictors_per_line=16)

    def test_rejects_unknown_policy(self):
        cache = InstructionCache(CacheGeometry(8 * 1024, 32, 1))
        with pytest.raises(ValueError):
            NLSCache(cache, policy="fifo")

"""Engine scenarios specific to associative instruction caches: set
(way) prediction, way misfetches, and associativity benefits."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.core.nls_table import NLSTable
from repro.fetch.engine import FetchEngine
from repro.fetch.frontends import BTBFrontEnd, NLSTableFrontEnd
from repro.harness.config import ArchitectureConfig
from repro.harness.runner import simulate
from repro.isa.branches import BranchKind
from repro.metrics.report import PenaltyModel
from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.static_ import AlwaysTakenPredictor
from repro.workloads.trace import Trace

U = BranchKind.UNCONDITIONAL


def nls_engine(assoc=2, **engine_kwargs):
    cache = InstructionCache(CacheGeometry(8 * 1024, 32, assoc))
    table = NLSTable(1024, cache.geometry)
    engine = FetchEngine(
        cache,
        NLSTableFrontEnd(table, cache),
        direction_predictor=AlwaysTakenPredictor(),
        **engine_kwargs,
    )
    return engine, cache, table


class TestWayMisfetch:
    def build_way_flip_trace(self, geometry):
        """A branches to T; T's line is evicted and refilled into the
        *other* way between executions, so the stale set field
        misfetches even though the line is resident."""
        a = 0x1000
        t = 0x3020
        # two more lines in T's set to churn the ways
        churn1 = t + geometry.size_bytes // geometry.associativity
        churn2 = churn1 + geometry.size_bytes // geometry.associativity
        trace = Trace("wayflip")
        for _ in range(8):
            trace.append(a, 4, U, True, t)
            trace.append(t, 4, U, True, churn1)
            trace.append(churn1, 4, U, True, churn2)
            trace.append(churn2, 4, U, True, a)
        trace.validate()
        return trace, t

    def test_two_way_churn_causes_misfetches(self):
        engine, cache, table = nls_engine(assoc=2)
        trace, t = self.build_way_flip_trace(cache.geometry)
        report = engine.run(trace)
        executed, misfetched, mispredicted = report.by_kind[U]
        # with three lines rotating through a 2-way set, the target is
        # often displaced or way-flipped: substantial misfetches
        assert misfetched > executed // 4

    def test_btb_suffers_only_cache_misses(self):
        cache = InstructionCache(CacheGeometry(8 * 1024, 32, 2))
        # 4-way BTB: the churn lines' branch pcs are one I-cache-way
        # apart, which also collides in a direct-mapped BTB — this test
        # isolates *cache* way behaviour, not BTB conflicts
        engine = FetchEngine(
            cache,
            BTBFrontEnd(BranchTargetBuffer(1024, 4)),
            direction_predictor=AlwaysTakenPredictor(),
        )
        trace, t = self.build_way_flip_trace(cache.geometry)
        report = engine.run(trace)
        executed, misfetched, mispredicted = report.by_kind[U]
        assert misfetched == 4  # cold allocations only


class TestAssociativityHelpsNLS:
    def test_four_way_reduces_nls_misfetch_on_gcc(self):
        # the Figure 7 trend: for a thrashing program, associativity
        # keeps more targets resident -> fewer NLS misfetches
        direct = simulate(
            ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=8,
                               cache_assoc=1),
            "gcc",
            instructions=120_000,
        )
        four_way = simulate(
            ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=8,
                               cache_assoc=4),
            "gcc",
            instructions=120_000,
        )
        assert four_way.icache_miss_rate < direct.icache_miss_rate
        assert four_way.bep_misfetch < direct.bep_misfetch + 0.02


class TestPenaltyOverrides:
    def test_custom_penalties_flow_through(self):
        engine, cache, table = nls_engine(
            assoc=1, penalties=PenaltyModel(misfetch=2.0, mispredict=10.0)
        )
        trace = Trace("loop")
        for _ in range(4):
            trace.append(0x1000, 8, U, True, 0x1000)
        report = engine.run(trace)
        assert report.penalties.misfetch == 2.0
        # 1 cold misfetch out of 4 breaks at 2 cycles each
        assert report.bep == pytest.approx(25.0 * 2.0 / 100.0)

    def test_config_penalty_plumbing(self):
        report = simulate(
            ArchitectureConfig(
                frontend="btb",
                entries=128,
                mispredict_penalty=8.0,
                icache_miss_penalty=20.0,
            ),
            "li",
            instructions=30_000,
        )
        assert report.penalties.mispredict == 8.0
        assert report.penalties.icache_miss == 20.0

"""Tests for the block-compressed trace container."""

import pytest

from repro.isa.branches import BranchKind
from repro.workloads.trace import Trace, TraceEvent


class TestAppendAndAccess:
    def test_counts(self):
        trace = Trace("t")
        trace.append(0x1000, 4, BranchKind.CALL, True, 0x2000)
        trace.append(0x2000, 3, BranchKind.RETURN, True, 0x1010)
        assert trace.n_events == 2
        assert len(trace) == 2
        assert trace.n_instructions == 7
        assert trace.n_breaks == 2

    def test_branch_pc_is_last_instruction(self):
        trace = Trace("t")
        trace.append(0x1000, 4, BranchKind.CALL, True, 0x2000)
        assert trace.branch_pc(0) == 0x100C

    def test_event_materialisation(self):
        trace = Trace("t")
        trace.append(0x1000, 4, BranchKind.CALL, True, 0x2000)
        event = trace.event(0)
        assert isinstance(event, TraceEvent)
        assert event.branch_pc == 0x100C
        assert event.fall_through == 0x1010
        assert event.kind == BranchKind.CALL

    def test_events_iterator(self):
        trace = Trace("t")
        trace.append(0x1000, 1)
        trace.append(0x1004, 1)
        assert len(list(trace.events())) == 2

    def test_non_branch_events_counted(self):
        trace = Trace("t")
        trace.append(0x1000, 10)
        assert trace.n_breaks == 0

    def test_rejects_empty_block(self):
        trace = Trace("t")
        with pytest.raises(ValueError):
            trace.append(0x1000, 0)

    def test_rejects_unaligned_start(self):
        trace = Trace("t")
        with pytest.raises(ValueError):
            trace.append(0x1001, 1)


class TestValidation:
    def test_valid_taken_chain(self):
        trace = Trace("t")
        trace.append(0x1000, 4, BranchKind.UNCONDITIONAL, True, 0x2000)
        trace.append(0x2000, 4, BranchKind.UNCONDITIONAL, True, 0x1000)
        trace.validate()

    def test_valid_fall_through(self):
        trace = Trace("t")
        trace.append(0x1000, 4, BranchKind.CONDITIONAL, False, 0x9000)
        trace.append(0x1010, 4)
        trace.validate()

    def test_detects_broken_taken_edge(self):
        trace = Trace("t")
        trace.append(0x1000, 4, BranchKind.UNCONDITIONAL, True, 0x2000)
        trace.append(0x3000, 4)
        with pytest.raises(ValueError):
            trace.validate()

    def test_detects_broken_fall_through(self):
        trace = Trace("t")
        trace.append(0x1000, 4, BranchKind.CONDITIONAL, False, 0x9000)
        trace.append(0x2000, 4)
        with pytest.raises(ValueError):
            trace.validate()

    def test_non_branch_must_fall_through(self):
        trace = Trace("t")
        trace.append(0x1000, 4)
        trace.append(0x2000, 4)
        with pytest.raises(ValueError):
            trace.validate()

    def test_final_event_unconstrained(self):
        trace = Trace("t")
        trace.append(0x1000, 4, BranchKind.RETURN, True, 0)
        trace.validate()  # no successor to check


class TestArraysAndPersistence:
    def test_to_arrays_shapes(self):
        trace = Trace("t")
        trace.append(0x1000, 4, BranchKind.CALL, True, 0x2000)
        arrays = trace.to_arrays()
        assert arrays["starts"].shape == (1,)
        assert arrays["kinds"][0] == int(BranchKind.CALL)
        assert bool(arrays["takens"][0]) is True

    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace("roundtrip")
        trace.append(0x1000, 4, BranchKind.UNCONDITIONAL, True, 0x2000)
        trace.append(0x2000, 8, BranchKind.RETURN, True, 0x1010)
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "roundtrip"
        assert loaded.starts == trace.starts
        assert loaded.counts == trace.counts
        assert loaded.kinds == trace.kinds
        assert loaded.takens == trace.takens
        assert loaded.targets == trace.targets

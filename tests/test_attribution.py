"""Tests for the fetch-attribution layer (DESIGN.md §11): histogram /
event-trace instruments, the cause taxonomy's exact conservation,
per-site profiles, Chrome-trace export and the ``attribute`` CLI."""

import json

import pytest

from repro.analysis.attribution import (
    conservation_errors,
    fold_attribution,
    render_markdown,
    to_payload,
)
from repro.fetch.attribution import (
    ATTRIBUTION_SCHEMA,
    CAUSE_FRONTEND_MISS,
    CAUSE_RAS_MISPOP,
    CAUSES,
    AttributionCollector,
)
from repro.harness.config import FRONTENDS, ArchitectureConfig
from repro.harness.runner import RunPlan, RunRequest, run_config, simulate
from repro.isa.branches import BranchKind
from repro.telemetry.core import EventTrace, Histogram, Registry, use
from repro.telemetry.sinks import chrome_trace_events, write_chrome_trace
from repro.workloads.trace import Trace

#: enough events to exercise every structure, small enough to be fast
TINY = 4_000


# ---------------------------------------------------------------------------
# Histogram
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_log2_bucket_mapping(self):
        histogram = Histogram("t")
        for value in (0, 1, 2, 3, 4, 7, 8, 1024):
            histogram.observe(value)
        # bucket b covers [2**(b-1), 2**b); bucket 0 is exact zeros
        assert histogram.buckets == {0: 1, 1: 1, 2: 2, 3: 2, 4: 1, 11: 1}
        assert histogram.count == 8
        assert histogram.total == 0 + 1 + 2 + 3 + 4 + 7 + 8 + 1024

    def test_bucket_bounds(self):
        assert Histogram.bucket_bounds(0) == (0, 1)
        assert Histogram.bucket_bounds(1) == (1, 2)
        assert Histogram.bucket_bounds(4) == (8, 16)

    def test_every_value_lands_in_its_bounds(self):
        histogram = Histogram("t")
        for value in range(0, 300, 7):
            histogram.observe(value)
            (bucket,) = [
                b for b in histogram.buckets
                if Histogram.bucket_bounds(b)[0] <= value < Histogram.bucket_bounds(b)[1]
            ]
            assert bucket == max(histogram.buckets) or value == 0

    def test_mean_and_weight(self):
        histogram = Histogram("t")
        histogram.observe(10, weight=3)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(10.0)

    def test_absorb_matches_single_stream(self):
        left, right, combined = Histogram("l"), Histogram("r"), Histogram("c")
        for value in (1, 5, 9):
            left.observe(value)
            combined.observe(value)
        for value in (2, 5, 300):
            right.observe(value)
            combined.observe(value)
        left.absorb(right)
        assert left.to_dict() == combined.to_dict()

    def test_absorb_accepts_snapshot_dict(self):
        source = Histogram("s")
        source.observe(42)
        target = Histogram("t")
        target.absorb(source.to_dict())
        assert target.buckets == source.buckets
        assert target.total == 42


# ---------------------------------------------------------------------------
# EventTrace
# ---------------------------------------------------------------------------


class TestEventTrace:
    def test_keeps_every_nth_starting_with_first(self):
        trace = EventTrace("t", capacity=100, sample=3)
        kept = [trace.record({"i": i}) for i in range(10)]
        assert kept == [True, False, False] * 3 + [True]
        assert trace.seen == 10
        assert trace.sampled == 4
        assert [r["i"] for r in trace.records] == [0, 3, 6, 9]

    def test_ring_overwrites_oldest(self):
        trace = EventTrace("t", capacity=3, sample=1)
        for i in range(5):
            trace.record({"i": i})
        assert [r["i"] for r in trace.records] == [2, 3, 4]
        assert trace.dropped == 2

    def test_absorb_concatenates_and_bounds(self):
        left = EventTrace("l", capacity=4, sample=1)
        right = EventTrace("r", capacity=4, sample=1)
        for i in range(3):
            left.record({"i": i})
        for i in range(3, 6):
            right.record({"i": i})
        left.absorb(right)
        # newest `capacity` records survive the merge
        assert [r["i"] for r in left.records] == [2, 3, 4, 5]
        assert left.seen == 6

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            EventTrace("t", capacity=0)
        with pytest.raises(ValueError):
            EventTrace("t", sample=0)


# ---------------------------------------------------------------------------
# collector basics
# ---------------------------------------------------------------------------


class TestAttributionCollector:
    def test_snapshot_schema_and_prefilled_causes(self):
        collector = AttributionCollector()
        snapshot = collector.snapshot()
        assert snapshot["schema"] == ATTRIBUTION_SCHEMA
        assert set(snapshot["causes"]) == set(CAUSES)
        assert snapshot["breaks"] == 0

    def test_correct_breaks_tally_sites_but_no_causes(self):
        collector = AttributionCollector()
        collector.observe(0x100, int(BranchKind.CONDITIONAL), True, 0, None)
        assert collector.penalty_events == 0
        assert collector.snapshot()["sites"][0x100]["executed"] == 1

    def test_two_bit_simulation_converges_on_biased_site(self):
        collector = AttributionCollector()
        for _ in range(100):
            collector.observe(0x100, int(BranchKind.CONDITIONAL), True, 0, None)
        site = collector.snapshot()["sites"][0x100]
        # init weakly-not-taken: only the first prediction misses
        assert site["two_bit_hits"] == 99
        assert site["taken"] == 100

    def test_reset_discards_everything(self):
        collector = AttributionCollector()
        collector.observe(0x100, int(BranchKind.CALL), True, 1, CAUSE_FRONTEND_MISS)
        collector.reset()
        assert collector.penalty_events == 0
        assert collector.snapshot()["sites"] == {}

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            AttributionCollector(sample=0)
        with pytest.raises(ValueError):
            AttributionCollector(capacity=0)


# ---------------------------------------------------------------------------
# conservation: causes partition the aggregates exactly
# ---------------------------------------------------------------------------


def _attributed_config(frontend, **overrides):
    return ArchitectureConfig(
        frontend=frontend, attribution=True, attribution_sample=1, **overrides
    )


class TestConservation:
    @pytest.mark.parametrize("frontend", FRONTENDS)
    @pytest.mark.parametrize("program", ["li", "espresso"])
    def test_causes_partition_aggregates(self, frontend, program):
        report = simulate(
            _attributed_config(frontend), program, instructions=TINY
        )
        assert conservation_errors(report) == []
        snapshot = report.attribution
        assert sum(snapshot["causes"].values()) == (
            report.misfetches + report.mispredicts
        )

    def test_conservation_holds_with_warmup_reset(self):
        # the collector must reset at the warmup boundary exactly where
        # the engine recreates its counters, or totals drift apart
        report = simulate(
            _attributed_config("nls-table"),
            "gcc",
            instructions=TINY,
        )
        assert conservation_errors(report) == []

    def test_serial_and_process_backends_agree(self):
        requests = [
            RunRequest(
                config=_attributed_config(frontend),
                program="li",
                instructions=TINY,
            )
            for frontend in ("nls-table", "btb")
        ]
        serial = RunPlan(requests).execute(backend="serial")
        pooled = RunPlan(requests).execute(backend="process", jobs=2)
        for request in requests:
            assert conservation_errors(pooled[request]) == []
            assert (
                pooled[request].attribution["causes"]
                == serial[request].attribution["causes"]
            )
            assert (
                pooled[request].attribution["sites"]
                == serial[request].attribution["sites"]
            )

    def test_no_collector_means_no_snapshot(self):
        report = simulate(
            ArchitectureConfig(frontend="btb"), "li", instructions=TINY
        )
        assert report.attribution is None
        assert conservation_errors(report) == [
            "report carries no attribution snapshot"
        ]


# ---------------------------------------------------------------------------
# RAS mispop attribution (hand-built traces)
# ---------------------------------------------------------------------------


def _run_trace(trace, **config_overrides):
    config = _attributed_config("btb", **config_overrides)
    return run_config(config, trace, warmup_fraction=0.0)


class TestRasMispopAttribution:
    def test_underflow_pop_is_ras_mispop(self):
        # a return with no matching call: the stack is empty, the pop
        # underflows, and the mispredict is charged to ras-mispop
        trace = Trace("underflow")
        trace.append(0x1000, 2, BranchKind.RETURN, taken=True, target=0x2000)
        trace.append(0x2000, 1)
        report = _run_trace(trace)
        assert report.mispredicts == 1
        assert report.attribution["causes"][CAUSE_RAS_MISPOP] == 1
        assert conservation_errors(report) == []
        # sample=1 keeps the event, with the underflow flag
        records = report.attribution["trace"]["records"]
        mispops = [r for r in records if r["cause"] == CAUSE_RAS_MISPOP]
        assert len(mispops) == 1
        assert mispops[0]["underflow"] is True
        assert mispops[0]["pc"] == 0x1004

    def test_wraparound_clobber_is_ras_mispop(self):
        # three nested calls against a 2-entry stack: the third push
        # wraps and clobbers the first return address, so unwinding
        # mispredicts when it reaches the clobbered frame
        trace = Trace("wraparound")
        trace.append(0x1000, 1, BranchKind.CALL, taken=True, target=0x2000)
        trace.append(0x2000, 1, BranchKind.CALL, taken=True, target=0x3000)
        trace.append(0x3000, 1, BranchKind.CALL, taken=True, target=0x4000)
        trace.append(0x4000, 1, BranchKind.RETURN, taken=True, target=0x3004)
        trace.append(0x3004, 1, BranchKind.RETURN, taken=True, target=0x2004)
        trace.append(0x2004, 1, BranchKind.RETURN, taken=True, target=0x1004)
        trace.append(0x1004, 1)
        trace.validate()
        report = _run_trace(trace, ras_entries=2)
        # the two live frames unwind fine; the clobbered one mispredicts
        assert report.attribution["causes"][CAUSE_RAS_MISPOP] == 1
        assert conservation_errors(report) == []
        mispops = [
            r
            for r in report.attribution["trace"]["records"]
            if r["cause"] == CAUSE_RAS_MISPOP
        ]
        assert mispops[0]["pc"] == 0x2004

    def test_wrong_address_pop_is_non_underflow_mispop(self):
        # the stack holds a live—but wrong—return address (a mismatched
        # call/return pair): the mispop is charged without underflow
        trace = Trace("stale")
        trace.append(0x1000, 1, BranchKind.CALL, taken=True, target=0x2000)
        trace.append(0x2000, 1, BranchKind.RETURN, taken=True, target=0x3000)
        trace.append(0x3000, 1)
        report = _run_trace(trace)
        mispops = [
            r
            for r in report.attribution["trace"]["records"]
            if r["cause"] == CAUSE_RAS_MISPOP
        ]
        assert len(mispops) == 1
        assert mispops[0]["underflow"] is False
        assert conservation_errors(report) == []

    def test_deep_stack_absorbs_matched_pairs(self):
        # same wraparound trace with the default 32-entry stack: every
        # return predicts correctly, so no ras-mispop is charged
        trace = Trace("deep")
        trace.append(0x1000, 1, BranchKind.CALL, taken=True, target=0x2000)
        trace.append(0x2000, 1, BranchKind.CALL, taken=True, target=0x3000)
        trace.append(0x3000, 1, BranchKind.CALL, taken=True, target=0x4000)
        trace.append(0x4000, 1, BranchKind.RETURN, taken=True, target=0x3004)
        trace.append(0x3004, 1, BranchKind.RETURN, taken=True, target=0x2004)
        trace.append(0x2004, 1, BranchKind.RETURN, taken=True, target=0x1004)
        trace.append(0x1004, 1)
        report = _run_trace(trace)
        assert report.attribution["causes"][CAUSE_RAS_MISPOP] == 0
        assert report.mispredicts == 0
        assert conservation_errors(report) == []


# ---------------------------------------------------------------------------
# analysis: profiles, BEP decomposition, rendering
# ---------------------------------------------------------------------------


class TestAttributionProfiles:
    @pytest.fixture(scope="class")
    def report(self):
        return simulate(
            _attributed_config("nls-table"), "li", instructions=TINY
        )

    def test_site_bep_contributions_sum_to_report_bep(self, report):
        profile = fold_attribution(report, top_k=5)
        total = sum(site.bep_contribution for site in profile.sites)
        assert total == pytest.approx(report.bep, rel=1e-9)
        # the rendered decomposition (top-K + other) is also complete
        top = sum(site.bep_contribution for site in profile.top_sites)
        assert top + profile.other_bep == pytest.approx(report.bep, rel=1e-9)

    def test_sites_ranked_hottest_first(self, report):
        profile = fold_attribution(report, top_k=5)
        contributions = [site.bep_contribution for site in profile.sites]
        assert contributions == sorted(contributions, reverse=True)

    def test_markdown_renders_cause_and_site_tables(self, report):
        markdown = render_markdown([fold_attribution(report, top_k=3)])
        assert "# Fetch-penalty attribution" in markdown
        for cause in CAUSES:
            assert f"`{cause}`" in markdown
        assert "| rank | pc | kind |" in markdown
        assert "(other:" in markdown

    def test_payload_is_json_serialisable(self, report):
        payload = to_payload([fold_attribution(report, top_k=3)])
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["profiles"][0]["causes"] == {
            cause: count
            for cause, count in report.attribution["causes"].items()
        }

    def test_fold_requires_snapshot(self):
        bare = simulate(
            ArchitectureConfig(frontend="btb"), "li", instructions=TINY
        )
        with pytest.raises(ValueError, match="no attribution snapshot"):
            fold_attribution(bare)

    def test_fold_rejects_bad_top_k(self, report):
        with pytest.raises(ValueError):
            fold_attribution(report, top_k=0)


# ---------------------------------------------------------------------------
# registry integration: histograms/traces merge, cause counters publish
# ---------------------------------------------------------------------------


class TestRegistryIntegration:
    def test_engine_publishes_cause_counters(self):
        registry = Registry(enabled=True)
        with use(registry):
            report = simulate(
                _attributed_config("nls-table"), "li", instructions=TINY
            )
        published = {
            name.replace("engine.cause.", ""): value
            for name, value in registry.counters.items()
            if name.startswith("engine.cause.")
        }
        nonzero = {
            cause: count
            for cause, count in report.attribution["causes"].items()
            if count
        }
        assert published == nonzero
        gap = registry.histograms["engine.penalty_gap"]
        assert gap["count"] == report.misfetches + report.mispredicts

    def test_histograms_merge_across_snapshots(self):
        parent = Registry(enabled=True)
        worker = Registry(enabled=True)
        worker.histogram("h").observe(5)
        worker.trace("t", capacity=8).record({"i": 1})
        parent.histogram("h").observe(9)
        parent.merge(worker.snapshot())
        assert parent.histograms["h"]["count"] == 2
        assert [r["i"] for r in parent.traces["t"]["records"]] == [1]

    def test_disabled_registry_hands_out_null_instruments(self):
        registry = Registry(enabled=False)
        histogram = registry.histogram("h")
        trace = registry.trace("t")
        histogram.observe(5)
        assert trace.record({"i": 1}) is False
        assert registry.histogram("other") is histogram  # shared null


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------


class TestChromeTrace:
    def _events_with_spans(self):
        registry = Registry(enabled=True)
        with use(registry):
            with registry.span("outer", label="a"):
                with registry.span("inner", label="b"):
                    pass
        return list(registry.events())

    def test_trace_event_schema(self):
        trace_events = chrome_trace_events(self._events_with_spans())
        assert len(trace_events) == 2
        for event in trace_events:
            assert set(event) == {
                "name", "cat", "ph", "ts", "dur", "pid", "tid", "args",
            }
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["args"], dict)
        # rebased: the earliest span starts at 0
        assert min(event["ts"] for event in trace_events) == 0.0

    def test_non_span_events_are_ignored(self):
        events = self._events_with_spans()
        events.append({"event": "counter", "name": "n", "value": 1})
        trace_events = chrome_trace_events(events)
        assert all(event["cat"] == "repro" for event in trace_events)
        assert len(trace_events) == 2

    def test_write_chrome_trace_file(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), self._events_with_spans())
        assert count == 2
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == 2

    def test_empty_stream_yields_empty_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        assert write_chrome_trace(str(path), []) == 0
        assert json.loads(path.read_text())["traceEvents"] == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestAttributeCLI:
    def test_attribute_smoke_writes_artifacts(self, tmp_path, capsys):
        from repro.harness.cli import main

        trace_path = tmp_path / "trace.json"
        status = main(
            [
                "attribute",
                "--smoke",
                "--programs",
                "li",
                "--frontends",
                "nls-table",
                "--instructions",
                str(TINY),
                "--attr-dir",
                str(tmp_path),
                "--chrome-trace",
                str(trace_path),
            ]
        )
        assert status == 0
        markdown = (tmp_path / "ATTRIBUTION.md").read_text()
        assert "| rank | pc | kind |" in markdown
        assert "`direction-wrong`" in markdown
        payload = json.loads((tmp_path / "ATTRIBUTION.json").read_text())
        assert payload["profiles"][0]["program"] == "li"
        chrome = json.loads(trace_path.read_text())
        assert chrome["traceEvents"]
        out = capsys.readouterr().out
        assert "[attribute: 1 profiles" in out
        assert "chrome-trace" in out

"""Tests for the analysis package: breakdowns, capacity curves,
penalty sensitivity, and wrong-path modelling."""

import pytest

from repro.analysis.breakdown import format_breakdown, penalty_breakdown
from repro.analysis.capacity import (
    btb_capacity_curve,
    format_capacity_curve,
    nls_capacity_curve,
)
from repro.analysis.sensitivity import (
    format_sensitivity,
    penalty_sensitivity,
    reweigh,
)
from repro.harness.config import ArchitectureConfig
from repro.harness.runner import simulate
from repro.metrics.report import PenaltyModel

SMALL = 40_000


@pytest.fixture(scope="module")
def li_report():
    return simulate(
        ArchitectureConfig(frontend="btb", entries=128), "li", instructions=SMALL
    )


class TestBreakdown:
    def test_shares_sum_to_one(self, li_report):
        rows = penalty_breakdown(li_report)
        assert sum(row.break_share for row in rows) == pytest.approx(1.0)
        assert sum(row.penalty_share for row in rows) == pytest.approx(1.0)

    def test_counts_match_report(self, li_report):
        rows = penalty_breakdown(li_report)
        assert sum(row.executed for row in rows) == li_report.n_breaks
        assert sum(row.misfetched for row in rows) == li_report.misfetches
        assert sum(row.mispredicted for row in rows) == li_report.mispredicts

    def test_penalty_cycles_consistent_with_bep(self, li_report):
        rows = penalty_breakdown(li_report)
        total = sum(row.penalty_cycles for row in rows)
        assert total == pytest.approx(li_report.bep * li_report.n_breaks, rel=1e-9)

    def test_rejects_kindless_report(self, li_report):
        from dataclasses import replace

        with pytest.raises(ValueError):
            penalty_breakdown(replace(li_report, by_kind=None))

    def test_formatting(self, li_report):
        text = format_breakdown(penalty_breakdown(li_report))
        assert "CONDITIONAL" in text and "%penalty" in text


class TestCapacityCurves:
    def test_btb_bep_improves_with_entries(self):
        points = btb_capacity_curve("gcc", entries_list=(32, 256), instructions=SMALL)
        assert points[0].bep > points[1].bep
        assert points[0].rbe < points[1].rbe

    def test_nls_curve_monotone_cost(self):
        points = nls_capacity_curve(
            "li", entries_list=(128, 512, 2048), instructions=SMALL
        )
        costs = [point.rbe for point in points]
        assert costs == sorted(costs)

    def test_equal_cost_comparison_favours_nls(self):
        # the §7 capacity argument on the hardest program
        btb = btb_capacity_curve("gcc", entries_list=(128,), instructions=SMALL)[0]
        nls = nls_capacity_curve("gcc", entries_list=(1024,), instructions=SMALL)[0]
        assert nls.rbe == pytest.approx(btb.rbe, rel=0.25)
        assert nls.pct_misfetched < btb.pct_misfetched

    def test_formatting(self):
        points = nls_capacity_curve("li", entries_list=(128,), instructions=SMALL)
        text = format_capacity_curve(points, title="curve")
        assert "curve" in text and "128" in text


class TestSensitivity:
    def test_reweigh_keeps_counts(self, li_report):
        heavier = reweigh(li_report, PenaltyModel(mispredict=12.0))
        assert heavier.misfetches == li_report.misfetches
        assert heavier.bep > li_report.bep

    def test_grid_shape(self):
        points = penalty_sensitivity(
            "li",
            mispredict_penalties=(4.0, 8.0),
            miss_penalties=(5.0,),
            instructions=SMALL,
        )
        assert len(points) == 2

    def test_bep_advantage_independent_of_miss_penalty(self):
        points = penalty_sensitivity(
            "gcc",
            mispredict_penalties=(4.0,),
            miss_penalties=(5.0, 20.0),
            instructions=SMALL,
        )
        # the BEP contains no cache term: advantage identical
        assert points[0].bep_advantage == pytest.approx(points[1].bep_advantage)

    def test_nls_advantage_stable_across_pipeline_depth(self):
        points = penalty_sensitivity(
            "gcc", mispredict_penalties=(2.0, 12.0), miss_penalties=(5.0,),
            instructions=SMALL,
        )
        for point in points:
            assert point.bep_advantage > 0  # NLS stays ahead

    def test_formatting(self):
        points = penalty_sensitivity(
            "li", mispredict_penalties=(4.0,), miss_penalties=(5.0,),
            instructions=SMALL,
        )
        text = format_sensitivity(points, title="sweep")
        assert "winner" in text


class TestWrongPathModelling:
    def test_wrong_path_inflates_accesses(self):
        base = ArchitectureConfig(frontend="btb", entries=128)
        polluted = ArchitectureConfig(
            frontend="btb", entries=128, model_wrong_path=True
        )
        clean_report = simulate(base, "gcc", instructions=SMALL)
        dirty_report = simulate(polluted, "gcc", instructions=SMALL)
        assert dirty_report.icache_accesses > clean_report.icache_accesses

    def test_wrong_path_off_by_default(self):
        assert ArchitectureConfig().model_wrong_path is False

    def test_nls_wrong_path_touches_only_fall_through(self):
        # the NLS stores no full address: its wrong-path accesses come
        # only from fall-through fetches, so the inflation is smaller
        # than the BTB's on the same trace
        def extra(frontend, **kw):
            clean = simulate(
                ArchitectureConfig(frontend=frontend, **kw), "gcc",
                instructions=SMALL,
            )
            dirty = simulate(
                ArchitectureConfig(frontend=frontend, model_wrong_path=True, **kw),
                "gcc",
                instructions=SMALL,
            )
            return dirty.icache_accesses - clean.icache_accesses

        assert extra("nls-table", entries=1024) >= 0
        assert extra("btb", entries=128) >= 0

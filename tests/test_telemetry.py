"""Telemetry subsystem tests: registry/sinks, NDJSON round-trips,
manifests, serial↔process merge equivalence, backend robustness, the
bench payloads + regression gate, and the disabled-overhead guard."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.config import ArchitectureConfig
from repro.harness.export import to_json
from repro.harness.runner import (
    CellExecutionError,
    RunPlan,
    RunRequest,
    _batches_by_trace,
    _run_batch,
    simulate,
)
from repro.harness.spec import ExperimentResult
from repro.telemetry import bench as bench_module
from repro.telemetry import manifest as manifest_module
from repro.telemetry.core import (
    Registry,
    get_registry,
    set_registry,
    use,
)
from repro.telemetry.sinks import (
    MemorySink,
    NDJSONSink,
    read_events,
    write_events,
)
from repro.workloads.corpus import clear_cache, generate_trace

TINY = 4_000


# ---------------------------------------------------------------------------
# core: counters, timers, spans, registries
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_accumulates(self):
        registry = Registry()
        registry.counter("x").add()
        registry.counter("x").add(4)
        assert registry.counters == {"x": 5}

    def test_timer_accumulates(self):
        registry = Registry()
        with registry.timer("t").time():
            pass
        with registry.timer("t").time():
            pass
        totals = registry.timers["t"]
        assert totals["count"] == 2
        assert totals["total_s"] >= 0.0

    def test_span_records_tags_and_duration(self):
        registry = Registry()
        with registry.span("work", program="gcc", backend="serial"):
            pass
        (span,) = registry.spans
        assert span.name == "work"
        assert span.tags == {"program": "gcc", "backend": "serial"}
        assert span.duration_s >= 0.0

    def test_disabled_registry_hands_out_shared_nulls(self):
        registry = Registry(enabled=False)
        assert registry.counter("a") is registry.counter("b")
        assert registry.timer("a") is registry.timer("b")
        assert registry.span("a") is registry.span("b")
        registry.counter("a").add(10)
        with registry.timer("a").time():
            pass
        with registry.span("a"):
            pass
        assert registry.counters == {}
        assert registry.timers == {}
        assert registry.spans == []
        assert registry.snapshot() == {"counters": {}, "timers": {}, "spans": []}

    def test_merge_adds_counters_and_concatenates_spans(self):
        a = Registry()
        a.counter("n").add(2)
        with a.span("s", k=1):
            pass
        b = Registry()
        b.counter("n").add(3)
        b.counter("m").add(1)
        with b.timer("t").time():
            pass
        with b.span("s", k=2):
            pass
        a.merge(b.snapshot())
        assert a.counters == {"m": 1, "n": 5}
        assert a.timers["t"]["count"] == 1
        assert len(a.spans) == 2
        a.merge(None)  # no-op
        assert a.counters == {"m": 1, "n": 5}

    def test_use_scopes_and_restores_active_registry(self):
        default = get_registry()
        scoped = Registry()
        with use(scoped):
            assert get_registry() is scoped
            with pytest.raises(RuntimeError):
                with use(Registry()):
                    assert get_registry() is not scoped
                    raise RuntimeError("boom")
            assert get_registry() is scoped
        assert get_registry() is default

    def test_events_render_every_instrument(self):
        registry = Registry()
        registry.counter("c").add(7)
        with registry.timer("t").time():
            pass
        with registry.span("s", tag="v"):
            pass
        events = list(registry.events())
        kinds = sorted(event["event"] for event in events)
        assert kinds == ["counter", "span", "timer"]
        assert all(event["schema"] == "repro-telemetry/v1" for event in events)


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


class TestSinks:
    def _registry(self) -> Registry:
        registry = Registry()
        registry.counter("hits").add(3)
        with registry.span("gen", program="li"):
            pass
        return registry

    def test_memory_sink_collects_all_events(self):
        registry = self._registry()
        sink = MemorySink()
        emitted = registry.emit(sink)
        assert emitted == len(sink.events) == 2

    def test_ndjson_round_trip(self, tmp_path):
        registry = self._registry()
        path = str(tmp_path / "events.ndjson")
        with NDJSONSink(path) as sink:
            registry.emit(sink)
        assert read_events(path) == list(registry.events())

    def test_write_events_is_atomic_and_round_trips(self, tmp_path):
        registry = self._registry()
        path = str(tmp_path / "dump.ndjson")
        count = write_events(path, registry.events())
        assert count == 2
        assert read_events(path) == list(registry.events())
        assert [p for p in os.listdir(tmp_path) if ".tmp." in p] == []

    def test_ndjson_rotation_preserves_every_event(self, tmp_path):
        path = str(tmp_path / "rot.ndjson")
        events = [
            {"event": "counter", "name": f"c{i}", "value": i} for i in range(20)
        ]
        with NDJSONSink(path, max_bytes=120, backups=30) as sink:
            for event in events:
                sink.write(event)
        recovered = []
        generations = sorted(
            (p for p in os.listdir(tmp_path) if p.startswith("rot.ndjson.")),
            key=lambda p: -int(p.rsplit(".", 1)[1]),
        )
        for name in generations:
            recovered.extend(read_events(str(tmp_path / name)))
        recovered.extend(read_events(path))
        assert recovered == events

    def test_ndjson_rotation_drops_oldest_beyond_backups(self, tmp_path):
        path = str(tmp_path / "cap.ndjson")
        with NDJSONSink(path, max_bytes=60, backups=2) as sink:
            for i in range(30):
                sink.write({"event": "counter", "name": "x", "value": i})
        files = sorted(p for p in os.listdir(tmp_path) if p.startswith("cap"))
        assert files == ["cap.ndjson", "cap.ndjson.1", "cap.ndjson.2"]

    def test_ndjson_sink_validates_arguments(self, tmp_path):
        with pytest.raises(ValueError):
            NDJSONSink(str(tmp_path / "x"), max_bytes=0)
        with pytest.raises(ValueError):
            NDJSONSink(str(tmp_path / "x"), backups=0)


# ---------------------------------------------------------------------------
# manifests
# ---------------------------------------------------------------------------


class TestManifest:
    def test_collect_fills_environment_fields(self):
        manifest = manifest_module.collect(
            config_label="cfg", program="li", trace_key=("li", 1, 2, "natural")
        )
        assert manifest.schema == manifest_module.MANIFEST_SCHEMA
        assert manifest.git_sha == "unknown" or len(manifest.git_sha) == 40
        assert manifest.python.count(".") == 2
        assert manifest.platform
        assert manifest.peak_rss_kb >= 0
        assert manifest.pid == os.getpid()
        payload = manifest.to_dict()
        assert payload["trace_key"] == ["li", 1, 2, "natural"]
        assert "extra" not in payload

    def test_reports_carry_a_manifest(self):
        config = ArchitectureConfig(frontend="nls-table", entries=64, cache_kb=8)
        report = simulate(config, "li", instructions=TINY)
        manifest = report.manifest
        assert manifest is not None
        assert manifest.config_label == config.label()
        assert manifest.program == "li"
        assert manifest.trace_key[0] == "li"
        assert manifest.wall_time_s > 0.0
        assert manifest.cpu_time_s >= 0.0

    def test_manifest_survives_json_export(self):
        config = ArchitectureConfig(frontend="btb", entries=32, cache_kb=8)
        report = simulate(config, "li", instructions=TINY)
        result = ExperimentResult(
            name="probe", title="probe", text="", data={"report": report}
        )
        payload = json.loads(to_json(result))
        manifest = payload["data"]["report"]["manifest"]
        for key in (
            "schema",
            "git_sha",
            "python",
            "platform",
            "config_label",
            "trace_key",
            "wall_time_s",
            "cpu_time_s",
            "peak_rss_kb",
        ):
            assert key in manifest, key


# ---------------------------------------------------------------------------
# runner integration: spans, merge equivalence, robustness
# ---------------------------------------------------------------------------


def _small_plan() -> RunPlan:
    plan = RunPlan()
    for frontend, kwargs in (("btb", {"entries": 32}), ("nls-table", {"entries": 64})):
        for program in ("li", "espresso"):
            plan.add(
                RunRequest(
                    config=ArchitectureConfig(frontend=frontend, cache_kb=8, **kwargs),
                    program=program,
                    instructions=TINY,
                )
            )
    return plan


class TestRunnerTelemetry:
    def test_serial_run_records_cell_spans_and_engine_counters(self):
        clear_cache()
        plan = _small_plan()
        with use(Registry()) as registry:
            plan.execute(backend="serial")
        counters = registry.counters
        assert counters["runner.cells"] == plan.unique
        assert counters["corpus.trace_cache_misses"] == 2
        assert counters["corpus.trace_cache_hits"] == plan.unique - 2
        assert counters["engine.blocks_decoded"] > 0
        assert counters["engine.frontend_predicts"] > 0
        assert counters["engine.icache_probes"] > 0
        cell_spans = [s for s in registry.spans if s.name == "runner.cell"]
        assert len(cell_spans) == plan.unique
        assert {s.tags["program"] for s in cell_spans} == {"li", "espresso"}

    def test_serial_and_process_telemetry_merge_equivalently(self):
        plan = _small_plan()

        clear_cache()
        with use(Registry()) as serial_registry:
            serial_reports = RunPlan(plan.requests).execute(backend="serial")

        clear_cache()
        with use(Registry()) as process_registry:
            process_reports = RunPlan(plan.requests).execute(
                backend="process", jobs=2
            )

        assert serial_reports == process_reports
        assert serial_registry.counters == process_registry.counters
        serial_spans = sorted(
            (s.name, s.tags.get("program", "")) for s in serial_registry.spans
        )
        process_spans = sorted(
            (s.name, s.tags.get("program", "")) for s in process_registry.spans
        )
        assert serial_spans == process_spans

    def test_disabled_telemetry_records_nothing(self):
        clear_cache()
        assert not get_registry().enabled
        _small_plan().execute(backend="serial")
        assert get_registry().counters == {}


class TestBackendRobustness:
    def test_batches_are_sorted_by_trace_key(self):
        plan = _small_plan()
        requests = list(plan.requests)
        batches_forward = _batches_by_trace(requests)
        batches_reversed = _batches_by_trace(list(reversed(requests)))
        keys_forward = [b[0].resolved_trace_key() for b in batches_forward]
        keys_reversed = [b[0].resolved_trace_key() for b in batches_reversed]
        assert keys_forward == sorted(keys_forward)
        assert keys_forward == keys_reversed

    def test_worker_failure_names_the_offending_cell(self):
        bad = RunRequest(
            config=ArchitectureConfig(frontend="btb", entries=32, cache_kb=8),
            program="li",
            instructions=TINY,
            seed=99,
            warmup=1.5,  # engine rejects warmup outside [0, 1)
        )
        with pytest.raises(CellExecutionError) as excinfo:
            _run_batch([bad])
        message = str(excinfo.value)
        assert "program='li'" in message
        assert "seed=99" in message
        assert "btb" in message

    def test_cell_execution_error_survives_pickling(self):
        import pickle

        error = CellExecutionError("cell failed: config='x' program='li'")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, CellExecutionError)
        assert str(clone) == str(error)

    def test_pool_start_failure_falls_back_to_serial(self, monkeypatch):
        import repro.harness.runner as runner_module

        def _broken_executor(*args, **kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(runner_module, "_make_executor", _broken_executor)
        clear_cache()
        plan = _small_plan()
        registry = Registry(enabled=True)
        with use(registry):
            with pytest.warns(RuntimeWarning, match="falling back to the serial"):
                reports = plan.execute(backend="process", jobs=2)
        assert len(reports) == plan.unique
        assert all(r.meta.backend == "serial" for r in reports.values())
        # the degradation is observable: a telemetry counter ticks and
        # every report's manifest records the serial fallback
        assert registry.counter("runner.pool_fallback").value >= 1
        assert all(
            r.manifest.extra["pool_fallback"] for r in reports.values()
        )


# ---------------------------------------------------------------------------
# bench payloads + regression gate
# ---------------------------------------------------------------------------


class TestBench:
    def _engine_payload(self):
        return bench_module.bench_engine(
            instructions=TINY,
            repeats=1,
            frontends=(("btb", {"entries": 32}),),
        )

    def test_engine_payload_is_schema_versioned(self):
        payload = self._engine_payload()
        assert payload["schema"] == bench_module.BENCH_SCHEMA
        assert payload["kind"] == "engine"
        assert payload["manifest"]["schema"] == manifest_module.MANIFEST_SCHEMA
        metrics = payload["results"]["btb"]
        assert metrics["events_per_s"] > 0
        assert metrics["instructions_per_s"] > 0
        assert metrics["wall_s"] > 0

    def test_write_and_load_round_trip(self, tmp_path):
        payload = self._engine_payload()
        path = bench_module.write_bench(payload, str(tmp_path / "BENCH_engine.json"))
        assert bench_module.load_bench(path) == json.loads(
            json.dumps(payload)
        )

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/v9", "results": {}}')
        with pytest.raises(ValueError, match="unsupported bench schema"):
            bench_module.load_bench(str(path))

    def test_gate_passes_identical_results(self):
        payload = self._engine_payload()
        assert bench_module.gate(payload, payload, tolerance=0.10) == []

    def test_gate_flags_injected_slowdown(self):
        payload = self._engine_payload()
        baseline = json.loads(json.dumps(payload))
        for metrics in baseline["results"].values():
            metrics["events_per_s"] *= 1.25  # current is >=10% below this
        violations = bench_module.gate(payload, baseline, tolerance=0.10)
        assert violations and "btb.events_per_s" in violations[0]

    def test_gate_tolerates_small_slowdown(self):
        payload = self._engine_payload()
        baseline = json.loads(json.dumps(payload))
        for metrics in baseline["results"].values():
            metrics["events_per_s"] *= 1.05  # within the 10% band
        assert bench_module.gate(payload, baseline, tolerance=0.10) == []

    def test_gate_flags_missing_entries_and_metrics(self):
        payload = self._engine_payload()
        baseline = json.loads(json.dumps(payload))
        baseline["results"]["vanished"] = {"events_per_s": 1.0}
        violations = bench_module.gate(payload, baseline, tolerance=0.10)
        assert any("vanished" in violation for violation in violations)

    def test_gate_validates_tolerance(self):
        payload = self._engine_payload()
        with pytest.raises(ValueError):
            bench_module.gate(payload, payload, tolerance=1.5)

    def test_sweep_payload_records_engine_classes(self):
        payload = bench_module.bench_sweep(
            programs=("li",),
            instructions=bench_module.SWEEP_INSTRUCTIONS_SMOKE,
            cache_grid=bench_module.SWEEP_GRID_SMOKE,
            figures=("fig4",),
        )
        assert set(payload["results"]) == {
            "reference",
            "fast_serial",
            "fast_process",
        }
        assert payload["results"]["fast_serial"]["speedup_vs_reference"] > 0
        extra = payload["manifest"]["extra"]
        classes = extra["engine_classes"]
        assert set(classes) == {
            "fast_batched",
            "fast_single",
            "reference",
            "fallback",
        }
        # the paper-figure sweep lies entirely inside the closed matrix
        assert classes["fallback"] == 0
        assert extra["fallback_cells"] == []
        assert sum(classes.values()) - classes["fallback"] == extra["cells_unique"]
        assert bench_module.gate(payload, payload) == []

    def test_gate_fails_on_fallback_cells(self):
        payload = self._engine_payload()
        baseline = json.loads(json.dumps(payload))
        payload["manifest"]["extra"] = {
            "engine_classes": {
                "fast_batched": 10,
                "fast_single": 2,
                "reference": 2,
                "fallback": 2,
            },
            "fallback_cells": [
                {"label": "btb-128e-1w @ 8K/1w", "reason": "wrong-path-modelling"}
            ],
        }
        violations = bench_module.gate(payload, baseline)
        assert any("fell back" in violation for violation in violations)
        assert any("wrong-path-modelling" in violation for violation in violations)


class TestBenchCLI:
    def test_bench_writes_artifacts_and_gate_gates(self, tmp_path):
        bench_dir = str(tmp_path)
        assert cli_main(["bench", "--smoke", "--bench-dir", bench_dir]) == 0
        engine_path = os.path.join(bench_dir, "BENCH_engine.json")
        sweep_path = os.path.join(bench_dir, "BENCH_sweep.json")
        for path in (engine_path, sweep_path):
            payload = bench_module.load_bench(path)
            assert payload["schema"] == bench_module.BENCH_SCHEMA
            assert payload["manifest"]["python"]
        # identical baseline: the gate passes
        assert (
            cli_main(
                ["bench", "--smoke", "--bench-dir", bench_dir, "--gate", engine_path]
            )
            == 0
        )
        # inflate the baseline ≥10%: the gate must fail non-zero
        baseline = bench_module.load_bench(engine_path)
        for metrics in baseline["results"].values():
            metrics["events_per_s"] *= 10.0
        bad = str(tmp_path / "baseline_bad.json")
        bench_module.write_bench(baseline, bad)
        assert (
            cli_main(["bench", "--smoke", "--bench-dir", bench_dir, "--gate", bad])
            == 1
        )


# ---------------------------------------------------------------------------
# overhead guard: disabled telemetry must not slow the engine hot loop
# ---------------------------------------------------------------------------


class TestOverheadGuard:
    def test_disabled_telemetry_engine_overhead_under_5_percent(self):
        assert not get_registry().enabled
        trace = generate_trace("li", instructions=60_000)
        config = ArchitectureConfig(frontend="nls-table", entries=1024, cache_kb=16)

        def timed(callable_):
            best = float("inf")
            for _ in range(5):
                engine = config.build()
                started = time.perf_counter()
                callable_(engine)
                best = min(best, time.perf_counter() - started)
            return best

        # the raw hot loop, bypassing the instrumented run() wrapper
        bare = timed(lambda engine: engine._simulate(trace))
        # the instrumented entry point with telemetry disabled
        instrumented = timed(lambda engine: engine.run(trace))
        overhead = instrumented / bare - 1.0
        # < 5% guard, plus a tiny absolute allowance for report
        # construction so a sub-millisecond blip cannot flake the suite
        assert instrumented <= bare * 1.05 + 2e-3, (
            f"disabled-telemetry overhead {overhead:.1%} exceeds 5% "
            f"(bare {bare:.4f}s vs instrumented {instrumented:.4f}s)"
        )

#!/usr/bin/env python
"""CI hardening smoke: crash the service for real and watch it recover.

Two chaos scenarios against real ``python -m repro.harness serve``
processes (short ``--lease`` so orphan claims happen in seconds):

1. **Restart recovery** — submit a multi-cell sweep, SIGKILL the
   server after a couple of cells land, restart ``serve`` on the same
   store, and assert the job finishes with **zero store-resident
   cells re-simulated** (the recovered run's ``store_hits`` equals
   the store's entry count at the moment of the kill) and one gapless
   exactly-once event sequence (including ``job-recovered``) across
   both incarnations.

2. **Two replicas, one store** — two ``serve`` processes share a
   store database; a sweep submitted to replica A is finished by
   replica B after A is SIGKILLed mid-job, with zero lost and zero
   recomputed cells, and B's ``/metrics`` showing the takeover.

Run from the repository root (the CI service-hardening job does
exactly this)::

    PYTHONPATH=src python tests/hardening_smoke.py

Artifacts (job manifests, event logs, ``/metrics`` scrapes, server
logs) land in ``./hardening-artifacts`` (override with
``HARDENING_SMOKE_DIR``) so CI can upload them.
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
import urllib.error
import urllib.request

ARTIFACT_DIR = os.environ.get("HARDENING_SMOKE_DIR", "hardening-artifacts")

#: a sweep wide enough that a SIGKILL after two cells is mid-job
CHAOS_JOB = {
    "experiment": "fig5",
    "programs": ["li", "espresso", "gcc"],
    "instructions": 20_000,
    "engine": "fast",
}

#: how many finished cells to wait for before pulling the plug
KILL_AFTER_CELLS = 2

#: lease seconds for every server — short, so recovery is fast
LEASE_S = "2"


def fail(message: str) -> "None":
    print(f"HARDENING SMOKE FAILED: {message}")
    sys.exit(1)


def get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def get_text(url: str) -> str:
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.read().decode("utf-8")


def post(url: str, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def write_artifact(name: str, payload) -> None:
    path = os.path.join(ARTIFACT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        if isinstance(payload, str):
            handle.write(payload)
        else:
            json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"artifact -> {path}")


def start_server(store_path: str, label: str):
    """Launch ``serve`` on an ephemeral port; returns (process, url)."""
    log_path = os.path.join(ARTIFACT_DIR, f"server-{label}.log")
    log = open(log_path, "w", encoding="utf-8")
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro.harness",
            "serve",
            "--port",
            "0",
            "--store",
            store_path,
            "--lease",
            LEASE_S,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    deadline = time.time() + 30
    url = None
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        log.write(line)
        if line.startswith("serving on "):
            url = line.split("serving on ", 1)[1].strip()
            break
    if url is None:
        process.kill()
        fail(f"server {label} never reported its URL (see {log_path})")
    log.flush()
    wait_ready(url, label)
    return process, url


def wait_ready(url: str, label: str, timeout: float = 30.0) -> None:
    """Poll ``/readyz`` until the server answers 200 ready."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        try:
            body = get(f"{url}/readyz")
            if body.get("ready"):
                return
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.1)
    fail(f"server {label} never became ready at {url}/readyz")


def kill_after_cells(process, url: str, job_id: str, label: str) -> None:
    """Stream the job's events and SIGKILL *process* once
    ``KILL_AFTER_CELLS`` cells have finished."""
    cells = 0
    stream = urllib.request.urlopen(
        f"{url}/api/v1/jobs/{job_id}/events", timeout=120
    )
    try:
        for line in stream:
            if not line.strip():
                continue
            event = json.loads(line)
            if event["event"] == "cell":
                cells += 1
            if event["event"].startswith("job-") and event["event"] not in (
                "job-queued",
                "job-started",
            ):
                fail(
                    f"{label}: job reached {event['event']} before the "
                    f"kill landed — widen CHAOS_JOB"
                )
            if cells >= KILL_AFTER_CELLS:
                break
    finally:
        stream.close()
    process.kill()
    process.wait(timeout=10)
    print(f"{label}: SIGKILLed the server after {cells} finished cells")


def store_entries(store_path: str) -> int:
    """Count result rows straight off the (crashed) database file."""
    conn = sqlite3.connect(store_path)
    try:
        return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
    finally:
        conn.close()


def await_job(url: str, job_id: str, timeout: float = 180.0):
    """Poll job status (registry-backed, so it works before the job is
    claimed) until a terminal state; returns the final status body."""
    deadline = time.time() + timeout
    status = None
    while time.time() < deadline:
        try:
            status = get(f"{url}/api/v1/jobs/{job_id}")
        except urllib.error.HTTPError as error:
            fail(f"job {job_id} vanished after the crash: {error}")
        if status.get("state") in ("completed", "failed", "cancelled"):
            return status
        time.sleep(0.25)
    fail(f"job {job_id} never finished after recovery: {status}")


def check_exactly_once(url: str, job_id: str, label: str):
    """The persisted log replays gapless from 0 across incarnations."""
    events = [
        json.loads(line)
        for line in get_text(f"{url}/api/v1/jobs/{job_id}/events?from=0")
        .strip()
        .splitlines()
        if line.strip()
    ]
    seqs = [event["seq"] for event in events]
    if seqs != list(range(len(seqs))):
        fail(f"{label}: event seqs are not gapless exactly-once: {seqs}")
    kinds = [event["event"] for event in events]
    if "job-recovered" not in kinds:
        fail(f"{label}: no job-recovered event in {kinds}")
    if kinds[-1] != "job-completed":
        fail(f"{label}: log ends on {kinds[-1]!r}, not job-completed")
    write_artifact(f"events-{label}.json", events)
    return events


def check_no_recompute(manifest, entries_at_kill: int, label: str) -> None:
    counters = manifest["counters"]
    if counters["store_hits"] != entries_at_kill:
        fail(
            f"{label}: expected exactly the {entries_at_kill} cells "
            f"finished before the kill to be store hits, manifest says "
            f"{counters['store_hits']}"
        )
    expected_computed = counters["cells_unique"] - entries_at_kill
    if counters["cells_computed"] != expected_computed:
        fail(
            f"{label}: recovered run recomputed cells: {counters}"
        )
    if counters["cells_quarantined"] != 0:
        fail(f"{label}: lost cells to quarantine: {counters}")
    print(
        f"{label}: {counters['cells_unique']} cells — "
        f"{entries_at_kill} survived the crash in the store, "
        f"{expected_computed} computed after recovery, zero lost, "
        f"zero recomputed"
    )


def restart_recovery() -> None:
    """Scenario 1: SIGKILL mid-job, restart on the same store."""
    print("--- scenario 1: restart recovery ---")
    store_path = os.path.join(ARTIFACT_DIR, "restart-store.sqlite")
    first, url = start_server(store_path, "restart-first")
    submitted = post(f"{url}/api/v1/jobs", CHAOS_JOB)
    job_id = submitted["job_id"]
    print(f"restart: submitted {job_id}")
    kill_after_cells(first, url, job_id, "restart")
    entries_at_kill = store_entries(store_path)
    if entries_at_kill < KILL_AFTER_CELLS:
        fail(
            f"restart: only {entries_at_kill} cells persisted before "
            f"the kill — incremental store writes are broken"
        )

    second, url = start_server(store_path, "restart-second")
    try:
        status = await_job(url, job_id)
        if status["state"] != "completed":
            fail(f"restart: recovered job ended {status['state']}: {status}")
        manifest = get(f"{url}/api/v1/jobs/{job_id}/manifest")
        write_artifact("restart-manifest.json", manifest)
        check_no_recompute(manifest, entries_at_kill, "restart")
        check_exactly_once(url, job_id, "restart")
        metrics = get_text(f"{url}/metrics")
        write_artifact("restart-metrics.prom", metrics)
        if "repro_service_jobs_recovered_total 1" not in metrics:
            fail("restart: jobs_recovered counter missing from /metrics")
    finally:
        second.send_signal(signal.SIGTERM)
        try:
            second.wait(timeout=15)
        except subprocess.TimeoutExpired:
            second.kill()


def two_replicas() -> None:
    """Scenario 2: replica B finishes what a SIGKILLed A started."""
    print("--- scenario 2: two replicas, one store ---")
    store_path = os.path.join(ARTIFACT_DIR, "replica-store.sqlite")
    replica_a, url_a = start_server(store_path, "replica-a")
    replica_b, url_b = start_server(store_path, "replica-b")
    try:
        submitted = post(f"{url_a}/api/v1/jobs", CHAOS_JOB)
        job_id = submitted["job_id"]
        print(f"replicas: submitted {job_id} to A")
        kill_after_cells(replica_a, url_a, job_id, "replicas")
        entries_at_kill = store_entries(store_path)

        status = await_job(url_b, job_id)
        if status["state"] != "completed":
            fail(f"replicas: job ended {status['state']} on B: {status}")
        manifest = get(f"{url_b}/api/v1/jobs/{job_id}/manifest")
        write_artifact("replica-manifest.json", manifest)
        check_no_recompute(manifest, entries_at_kill, "replicas")
        check_exactly_once(url_b, job_id, "replicas")
        stats = get(f"{url_b}/api/v1/store/stats")
        if stats["store"]["entries"] != manifest["counters"]["cells_unique"]:
            fail(f"replicas: store entry count mismatch: {stats['store']}")
        metrics = get_text(f"{url_b}/metrics")
        write_artifact("replica-metrics.prom", metrics)
        if "repro_service_lease_takeovers_total 1" not in metrics:
            fail("replicas: lease_takeovers counter missing from B's /metrics")
    finally:
        for process in (replica_a, replica_b):
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        for process in (replica_a, replica_b):
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()


def main() -> int:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    restart_recovery()
    two_replicas()
    print("OK: restart recovery and replica takeover both clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Tests for the fetch front-end adapters."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.core.johnson import JohnsonSuccessorIndex
from repro.core.nls_cache import NLSCache
from repro.core.nls_table import NLSTable
from repro.fetch.frontends import (
    BTBFrontEnd,
    FallThroughFrontEnd,
    JohnsonFrontEnd,
    MECH_CONDITIONAL,
    MECH_OTHER,
    MECH_RETURN,
    NLSCacheFrontEnd,
    NLSTableFrontEnd,
    OracleFrontEnd,
)
from repro.isa.branches import BranchKind
from repro.predictors.btb import BranchTargetBuffer


def make_cache(assoc=1):
    return InstructionCache(CacheGeometry(8 * 1024, 32, assoc))


class TestBTBFrontEnd:
    def setup_method(self):
        self.frontend = BTBFrontEnd(BranchTargetBuffer(128, 1))

    def test_miss_returns_no_mechanism(self):
        mech, handle = self.frontend.predict(0x1000, 0)
        assert mech is None and handle is None

    def test_mechanism_from_stored_kind(self):
        cases = [
            (BranchKind.RETURN, MECH_RETURN),
            (BranchKind.CONDITIONAL, MECH_CONDITIONAL),
            (BranchKind.UNCONDITIONAL, MECH_OTHER),
            (BranchKind.CALL, MECH_OTHER),
            (BranchKind.INDIRECT, MECH_OTHER),
        ]
        for position, (kind, expected) in enumerate(cases):
            pc = 0x1000 + position * 4
            self.frontend.update(pc, kind, True, 0x2000, pc + 4, 0)
            mech, handle = self.frontend.predict(pc, 0)
            assert mech == expected

    def test_target_matches_full_address(self):
        self.frontend.update(0x1000, BranchKind.CALL, True, 0x2000, 0x1004, 0)
        mech, handle = self.frontend.predict(0x1000, 0)
        assert self.frontend.target_matches(handle, 0x2000)
        assert not self.frontend.target_matches(handle, 0x2004)

    def test_not_taken_update_does_not_allocate(self):
        self.frontend.update(0x1000, BranchKind.CONDITIONAL, False, 0, 0x1004, 0)
        mech, handle = self.frontend.predict(0x1000, 0)
        assert mech is None

    def test_name_and_flags(self):
        assert "btb" in self.frontend.name
        assert self.frontend.implicit_direction is False
        assert self.frontend.perfect is False


class TestNLSTableFrontEnd:
    def setup_method(self):
        self.cache = make_cache()
        self.frontend = NLSTableFrontEnd(NLSTable(1024, self.cache.geometry), self.cache)

    def test_invalid_entry_returns_no_mechanism(self):
        mech, handle = self.frontend.predict(0x1000, 0)
        assert mech is None

    def test_match_requires_residency(self):
        self.cache.access(0x2000)
        self.frontend.update(0x1000, BranchKind.CALL, True, 0x2000, 0x1004, 0)
        mech, handle = self.frontend.predict(0x1000, 0)
        assert mech == MECH_OTHER
        assert self.frontend.target_matches(handle, 0x2000)
        self.cache.flush()
        mech, handle = self.frontend.predict(0x1000, 0)
        assert not self.frontend.target_matches(handle, 0x2000)

    def test_way_training_through_update(self):
        cache = make_cache(assoc=2)
        frontend = NLSTableFrontEnd(NLSTable(1024, cache.geometry), cache)
        way = cache.access(0x2000).way
        frontend.update(0x1000, BranchKind.CALL, True, 0x2000, 0x1004, way)
        mech, handle = frontend.predict(0x1000, 0)
        assert frontend.target_matches(handle, 0x2000)


class TestNLSCacheFrontEnd:
    def test_uses_carrier_way(self):
        cache = make_cache()
        frontend = NLSCacheFrontEnd(NLSCache(cache))
        way = cache.access(0x1000).way
        cache.access(0x2000)
        frontend.update(0x1000, BranchKind.CALL, True, 0x2000, 0x1004, 0)
        mech, handle = frontend.predict(0x1000, way)
        assert mech == MECH_OTHER
        assert frontend.target_matches(handle, 0x2000)

    def test_name_mentions_policy(self):
        cache = make_cache()
        frontend = NLSCacheFrontEnd(NLSCache(cache, policy="lru"))
        assert "lru" in frontend.name


class TestJohnsonFrontEnd:
    def setup_method(self):
        self.cache = make_cache()
        self.frontend = JohnsonFrontEnd(JohnsonSuccessorIndex(self.cache))

    def test_implicit_direction_flag(self):
        assert self.frontend.implicit_direction is True

    def test_taken_then_not_taken_flips_pointer(self):
        self.cache.access(0x1000)
        self.cache.access(0x2000)
        pc, fall_through = 0x1000, 0x1004
        self.frontend.update(pc, BranchKind.CONDITIONAL, True, 0x2000, fall_through, 0)
        mech, handle = self.frontend.predict(pc, 0)
        assert self.frontend.implied_taken(handle, fall_through)
        self.frontend.update(pc, BranchKind.CONDITIONAL, False, 0x2000, fall_through, 0)
        mech, handle = self.frontend.predict(pc, 0)
        assert not self.frontend.implied_taken(handle, fall_through)

    def test_match_checks_residency(self):
        self.cache.access(0x1000)
        self.cache.access(0x2000)
        self.frontend.update(0x1000, BranchKind.UNCONDITIONAL, True, 0x2000, 0x1004, 0)
        mech, handle = self.frontend.predict(0x1000, 0)
        assert self.frontend.target_matches(handle, 0x2000)
        assert not self.frontend.target_matches(handle, 0x2004)


class TestBoundFrontEnds:
    def test_oracle(self):
        frontend = OracleFrontEnd()
        assert frontend.perfect is True
        mech, handle = frontend.predict(0x1000, 0)
        assert frontend.target_matches(handle, 0xDEAD0)

    def test_fall_through(self):
        frontend = FallThroughFrontEnd()
        mech, handle = frontend.predict(0x1000, 0)
        assert mech is None
        assert not frontend.target_matches(handle, 0x1000)

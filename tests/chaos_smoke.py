#!/usr/bin/env python
"""CI chaos smoke: drive the CLI through injected faults end to end.

Arms a deterministic fault plan (see :mod:`repro.testing.faults`) with
one of everything — a killed worker, a hung cell, a corrupted cached
trace file, and a deterministically failing cell — then runs a real
sweep through ``python -m repro.harness`` with the resilience flags
and asserts the expected outcome: the sweep finishes, exactly the
targeted cell is quarantined in ``FAILURES.json``, and the exit status
is non-zero.

On a single-CPU runner the sweep degrades to the serial backend, where
the ``kill`` fault SIGKILLs the sweep process itself; the script then
re-runs with ``--resume`` — which is precisely the crash-recovery path
the flag exists for — and the durable fault-budget spool guarantees
the fault does not fire twice.

Run from the repository root (the CI chaos-smoke job does exactly
this)::

    PYTHONPATH=src python tests/chaos_smoke.py

Artifacts (fault plan, checkpoint journal, FAILURES.json, CLI output)
land in ``./chaos-artifacts`` (override with ``CHAOS_SMOKE_DIR``) so
CI can upload them.
"""

import json
import os
import shutil
import subprocess
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.testing.faults import FaultSpec, load_plan, plan_summary, write_plan
from repro.workloads import corpus

#: trace length: long enough to be a real sweep, short enough for CI
INSTRUCTIONS = 20_000

#: the deterministically failing cell the manifest must name
VICTIM_PROGRAM = "li"
VICTIM_CONFIG = "johnson-2pl*"


def fail(message: str) -> None:
    print(f"CHAOS-SMOKE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    workdir = os.path.abspath(os.environ.get("CHAOS_SMOKE_DIR", "chaos-artifacts"))
    shutil.rmtree(workdir, ignore_errors=True)
    cache_dir = os.path.join(workdir, "trace-cache")
    checkpoint = os.path.join(workdir, "ckpt")
    os.makedirs(cache_dir, exist_ok=True)

    env = dict(os.environ, REPRO_TRACE_CACHE_DIR=cache_dir)
    env.pop("REPRO_TRACE_SCALE", None)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    os.environ.pop("REPRO_TRACE_SCALE", None)

    # 1. warm the on-disk trace cache so the corrupt fault has a victim
    os.environ[corpus.CACHE_DIR_ENV_VAR] = cache_dir
    for program in ("li", "espresso"):
        corpus.generate_trace(program, instructions=INSTRUCTIONS)
    if not any(name.endswith(".npz") for name in os.listdir(cache_dir)):
        fail("trace cache warm-up produced no .npz files")

    # 2. arm one fault of every kind; budgets are durable across the
    # processes (and process deaths) of the whole smoke
    plan_path = write_plan(
        os.path.join(workdir, "faults.json"),
        [
            # fires twice on the same cell -> deterministic quarantine;
            # budget 4 covers a --resume re-run after a serial crash
            FaultSpec(
                action="raise",
                program=VICTIM_PROGRAM,
                config=VICTIM_CONFIG,
                times=4,
                message="chaos-smoke deterministic failure",
            ),
            FaultSpec(
                action="hang",
                program="espresso",
                config="nls-table*",
                times=1,
                hang_s=120.0,
            ),
            FaultSpec(
                action="kill", program="espresso", config="nls-table*", times=1
            ),
            FaultSpec(
                action="corrupt", site="trace-file", program="li", times=1
            ),
        ],
    )

    # 3. run the sweep; on a serial (single-CPU) run the kill fault
    # takes the whole process down -> recover with --resume
    argv = [
        sys.executable,
        "-m",
        "repro.harness",
        "johnson",
        "--programs",
        "li",
        "espresso",
        "--instructions",
        str(INSTRUCTIONS),
        "--jobs",
        "2",
        "--max-retries",
        "2",
        "--cell-timeout",
        "10",
        "--checkpoint-dir",
        checkpoint,
        "--faults",
        plan_path,
    ]
    proc = None
    for attempt in range(1, 4):
        resume = ["--resume"] if attempt > 1 else []
        print(f"--- sweep attempt {attempt}: {' '.join(argv + resume)}")
        proc = subprocess.run(
            argv + resume, env=env, capture_output=True, text=True, timeout=540
        )
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode >= 0:
            break
        print(f"--- sweep killed by signal {-proc.returncode}; resuming")
    else:
        fail("sweep still dying after 3 attempts")

    with open(os.path.join(workdir, "cli-output.txt"), "w") as handle:
        handle.write(proc.stdout + proc.stderr)

    # 4. assert the managed-failure contract
    if proc.returncode != 1:
        fail(f"expected exit status 1 (quarantine), got {proc.returncode}")
    if "QUARANTINED 1 cell" not in proc.stdout:
        fail("stdout does not announce the quarantine")
    if "Johnson" not in proc.stdout:
        fail("the surviving cells did not render the experiment")

    manifest_path = os.path.join(checkpoint, "FAILURES.json")
    if not os.path.exists(manifest_path):
        fail(f"missing quarantine manifest {manifest_path}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest["count"] != 1:
        fail(f"expected exactly 1 quarantined cell, got {manifest['count']}")
    (entry,) = manifest["quarantined"]
    if entry["program"] != VICTIM_PROGRAM:
        fail(f"wrong quarantined program: {entry['program']}")
    if not entry["config"].startswith("johnson-2pl"):
        fail(f"wrong quarantined config: {entry['config']}")
    if entry["kind"] != "deterministic":
        fail(f"expected a deterministic quarantine, got {entry['kind']!r}")
    if entry["error_type"] != "FaultInjectedError":
        fail(f"wrong error type: {entry['error_type']}")

    if not os.path.exists(os.path.join(checkpoint, "journal.ndjson")):
        fail("checkpoint journal missing after the sweep")

    # 5. every armed fault actually fired
    summary = plan_summary(load_plan(plan_path))
    for spec in summary:
        if spec["fired"] < 1:
            fail(f"fault never fired: {spec}")
    if summary[0]["fired"] < 2:
        fail(f"deterministic raise fired fewer than twice: {summary[0]}")

    print("chaos-smoke OK:")
    for spec in summary:
        print(
            f"  {spec['action']:<8} site={spec['site']:<10} "
            f"program={spec['program']:<10} fired {spec['fired']}/{spec['times']}"
        )
    print(f"  quarantined: {entry['config']} / {entry['program']} -> {manifest_path}")


if __name__ == "__main__":
    main()

"""Tests for counters, reports, BEP/CPI arithmetic and averaging."""

import pytest

from repro.isa.branches import BranchKind
from repro.metrics.counters import KindCounters, SimulationCounters
from repro.metrics.report import PenaltyModel, SimulationReport, average_reports


def make_report(
    breaks=100,
    misfetches=10,
    mispredicts=5,
    instructions=1000,
    accesses=200,
    misses=20,
    penalties=None,
):
    return SimulationReport(
        label="test",
        program="prog",
        n_instructions=instructions,
        n_breaks=breaks,
        misfetches=misfetches,
        mispredicts=mispredicts,
        icache_accesses=accesses,
        icache_misses=misses,
        penalties=penalties or PenaltyModel(),
    )


class TestCounters:
    def test_record_exclusive_outcomes(self):
        counters = SimulationCounters()
        counters.record(BranchKind.CALL, misfetched=True, mispredicted=False)
        counters.record(BranchKind.CALL, misfetched=False, mispredicted=True)
        counters.record(BranchKind.CALL, misfetched=False, mispredicted=False)
        assert counters.by_kind[BranchKind.CALL].executed == 3
        assert counters.by_kind[BranchKind.CALL].correct == 1

    def test_record_rejects_double_classification(self):
        counters = SimulationCounters()
        with pytest.raises(ValueError):
            counters.record(BranchKind.CALL, misfetched=True, mispredicted=True)

    def test_totals(self):
        counters = SimulationCounters()
        counters.record(BranchKind.CALL, True, False)
        counters.record(BranchKind.RETURN, False, True)
        assert counters.n_breaks == 2
        assert counters.misfetches == 1
        assert counters.mispredicts == 1

    def test_check_detects_corruption(self):
        counters = SimulationCounters()
        counters.by_kind[BranchKind.CALL] = KindCounters(
            executed=1, misfetched=2, mispredicted=0
        )
        with pytest.raises(ValueError):
            counters.check()

    def test_miss_rate(self):
        counters = SimulationCounters()
        counters.icache_accesses = 10
        counters.icache_misses = 3
        assert counters.icache_miss_rate == pytest.approx(0.3)


class TestPenaltyModel:
    def test_paper_defaults(self):
        penalties = PenaltyModel()
        assert penalties.misfetch == 1.0
        assert penalties.mispredict == 4.0
        assert penalties.icache_miss == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PenaltyModel(misfetch=-1)


class TestReportArithmetic:
    def test_bep_matches_paper_formula(self):
        # BEP = (%MfB * 1 + %MpB * 4) / 100   (S5.2)
        report = make_report(breaks=100, misfetches=10, mispredicts=5)
        assert report.pct_misfetched == pytest.approx(10.0)
        assert report.pct_mispredicted == pytest.approx(5.0)
        assert report.bep == pytest.approx((10 * 1 + 5 * 4) / 100)

    def test_bep_components(self):
        report = make_report()
        assert report.bep == pytest.approx(report.bep_misfetch + report.bep_mispredict)

    def test_cpi_formula(self):
        report = make_report(
            breaks=100, misfetches=10, mispredicts=5, instructions=1000, misses=20
        )
        expected = (1000 + report.bep * 100 + 20 * 5) / 1000
        assert report.cpi == pytest.approx(expected)

    def test_cpi_never_below_one(self):
        report = make_report(misfetches=0, mispredicts=0, misses=0)
        assert report.cpi == pytest.approx(1.0)

    def test_zero_breaks_defines_zero_rates(self):
        report = make_report(breaks=0, misfetches=0, mispredicts=0)
        assert report.pct_misfetched == 0.0
        assert report.bep == 0.0

    def test_custom_penalties(self):
        penalties = PenaltyModel(misfetch=2.0, mispredict=8.0, icache_miss=10.0)
        report = make_report(penalties=penalties)
        assert report.bep == pytest.approx((10 * 2 + 5 * 8) / 100)

    def test_summary_contains_key_numbers(self):
        text = make_report().summary()
        assert "BEP" in text and "CPI" in text


class TestAveraging:
    def test_equal_weight_program_average(self):
        # the paper averages per-program rates with equal weight
        a = make_report(breaks=100, misfetches=10, mispredicts=0)
        b = make_report(breaks=10000, misfetches=0, mispredicts=0)
        average = average_reports([a, b])
        assert average.pct_misfetched == pytest.approx(5.0, abs=0.01)

    def test_average_bep(self):
        a = make_report(breaks=1000, misfetches=100, mispredicts=50)
        b = make_report(breaks=1000, misfetches=200, mispredicts=100)
        average = average_reports([a, b])
        assert average.bep == pytest.approx((a.bep + b.bep) / 2, abs=0.01)

    def test_average_rejects_empty(self):
        with pytest.raises(ValueError):
            average_reports([])

    def test_average_label(self):
        average = average_reports([make_report()], label="overall")
        assert average.label == "overall"

"""Documentation-consistency guards.

These tests keep the prose honest: every experiment the README and
DESIGN.md advertise must exist in the registry, every public module
must carry a docstring, and the repository layout must match what the
README's architecture overview describes.
"""

import importlib
import pathlib
import pkgutil
import re

import repro
from repro.harness.experiments import EXPERIMENTS

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestReadme:
    def readme(self) -> str:
        return (REPO / "README.md").read_text()

    def test_advertised_experiments_exist(self):
        text = self.readme()
        for name in re.findall(r"python -m repro\.harness (\S+)", text):
            name = name.strip("`")
            if name in ("all", "list", "bench", "attribute"):
                continue
            assert name in EXPERIMENTS, name

    def test_advertised_examples_exist(self):
        text = self.readme()
        for example in re.findall(r"`(\w+\.py)`", text):
            assert (REPO / "examples" / example).exists(), example

    def test_linked_documents_exist(self):
        text = self.readme()
        for doc in ("EXPERIMENTS.md", "DESIGN.md"):
            assert doc in text
            assert (REPO / doc).exists()

    def test_quickstart_snippet_is_valid(self):
        # the imports the snippet uses must resolve
        from repro import ArchitectureConfig, simulate  # noqa: F401


class TestDesignDoc:
    def test_per_experiment_index_names_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for name in re.findall(r"`repro\.harness (\S+?)`", text):
            if name in ("all", "list", "bench"):
                continue
            assert name in EXPERIMENTS, name

    def test_referenced_docs_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for path in re.findall(r"\(docs/(\w+\.md)\)", text):
            assert (REPO / "docs" / path).exists(), path


class TestDocstrings:
    def all_modules(self):
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            if "__main__" in module_info.name:
                continue
            yield importlib.import_module(module_info.name)

    def test_every_module_has_a_docstring(self):
        for module in self.all_modules():
            assert module.__doc__, module.__name__

    def test_every_public_class_has_a_docstring(self):
        for module in self.all_modules():
            for name in dir(module):
                if name.startswith("_"):
                    continue
                obj = getattr(module, name)
                if isinstance(obj, type) and obj.__module__ == module.__name__:
                    assert obj.__doc__, f"{module.__name__}.{name}"

    def test_every_public_function_has_a_docstring(self):
        import types

        for module in self.all_modules():
            for name in dir(module):
                if name.startswith("_"):
                    continue
                obj = getattr(module, name)
                if (
                    isinstance(obj, types.FunctionType)
                    and obj.__module__ == module.__name__
                ):
                    assert obj.__doc__, f"{module.__name__}.{name}"


class TestLayout:
    def test_architecture_overview_packages_exist(self):
        for package in (
            "isa",
            "cache",
            "predictors",
            "core",
            "fetch",
            "metrics",
            "cost",
            "analysis",
            "workloads",
            "harness",
            "telemetry",
        ):
            assert (REPO / "src" / "repro" / package / "__init__.py").exists()

    def test_py_typed_marker(self):
        assert (REPO / "src" / "repro" / "py.typed").exists()

    def test_benchmarks_cover_every_paper_figure(self):
        names = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for required in (
            "bench_table1.py",
            "bench_fig3_rbe.py",
            "bench_fig4_nls.py",
            "bench_fig5_btb.py",
            "bench_fig6_access_time.py",
            "bench_fig7_per_program.py",
            "bench_fig8_cpi.py",
        ):
            assert required in names

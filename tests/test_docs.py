"""Documentation-consistency guards.

These tests keep the prose honest: every experiment the README and
DESIGN.md advertise must exist in the registry, the README quickstart
code actually runs, DESIGN.md sections cited from CHANGES.md exist,
every public module must carry a docstring (with the harness and
fetch layers held to the stricter ruff D-subset contract), and the
repository layout must match what the README's architecture overview
describes.
"""

import ast
import importlib
import os
import pathlib
import pkgutil
import re
import subprocess
import sys

import repro
from repro.harness.experiments import EXPERIMENTS

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestReadme:
    def readme(self) -> str:
        return (REPO / "README.md").read_text()

    def test_advertised_experiments_exist(self):
        text = self.readme()
        for name in re.findall(r"python -m repro\.harness (\S+)", text):
            name = name.strip("`")
            if name in (
                "all",
                "analyze",
                "list",
                "bench",
                "attribute",
                "serve",
                "store",
                "jobs",
                "ingest",
            ):
                continue
            assert name in EXPERIMENTS, name

    def test_advertised_examples_exist(self):
        text = self.readme()
        for example in re.findall(r"`(\w+\.py)`", text):
            assert (REPO / "examples" / example).exists(), example

    def test_linked_documents_exist(self):
        text = self.readme()
        for doc in (
            "EXPERIMENTS.md",
            "DESIGN.md",
            "docs/ARCHITECTURE.md",
            "docs/TELEMETRY.md",
            "docs/PERFORMANCE.md",
            "docs/SERVICE.md",
            "docs/TRACES.md",
            "docs/WORKLOADS.md",
        ):
            assert doc in text
            assert (REPO / doc).exists()

    def test_quickstart_snippet_is_valid(self):
        # the imports the snippet uses must resolve
        from repro import ArchitectureConfig, simulate  # noqa: F401

    def test_engine_flag_documented(self):
        assert "--engine fast" in self.readme()


class TestQuickstartRuns:
    """Extract-and-run gate on the README quickstart fenced blocks."""

    def quickstart_section(self) -> str:
        text = (REPO / "README.md").read_text()
        return text.split("## Quickstart")[1].split("\n## ")[0]

    def fenced_blocks(self, language: str):
        return re.findall(
            rf"```{language}\n(.*?)```", self.quickstart_section(), re.DOTALL
        )

    def test_python_blocks_execute(self, tmp_path):
        blocks = self.fenced_blocks("python")
        assert blocks, "README quickstart lost its python example"
        env = dict(os.environ)
        env["REPRO_TRACE_SCALE"] = "0.02"  # documented full budgets, scaled
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        for index, block in enumerate(blocks):
            script = tmp_path / f"quickstart_{index}.py"
            script.write_text(block)
            result = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                text=True,
                env=env,
                timeout=300,
            )
            assert result.returncode == 0, result.stderr
            assert result.stdout.strip(), "quickstart example printed nothing"

    def test_shell_blocks_reference_real_entry_points(self):
        # every `python -m repro.X` the quickstart-adjacent shell
        # blocks mention must be an importable module
        text = (REPO / "README.md").read_text()
        for module in set(re.findall(r"python -m (repro[.\w]*)", text)):
            assert importlib.util.find_spec(module) is not None, module


class TestExternalTracesSectionRuns:
    """Extract-and-run gate on the README external-traces section.

    Mirrors :class:`TestQuickstartRuns` for the "External traces &
    modern workloads" section: its fenced python blocks must execute
    (against the committed fixtures, with the external-trace store
    redirected to a temp dir) and its shell blocks must reference
    real experiments and entry points (covered by
    ``TestReadme.test_advertised_experiments_exist`` and
    ``TestQuickstartRuns.test_shell_blocks_reference_real_entry_points``,
    which scan the whole README).
    """

    HEADING = "## External traces & modern workloads"

    def section(self) -> str:
        text = (REPO / "README.md").read_text()
        assert self.HEADING in text, "README lost its external-traces section"
        return text.split(self.HEADING)[1].split("\n## ")[0]

    def test_python_blocks_execute(self, tmp_path):
        blocks = re.findall(
            r"```python\n(.*?)```", self.section(), re.DOTALL
        )
        assert blocks, "external-traces section lost its python example"
        env = dict(os.environ)
        env["REPRO_TRACE_SCALE"] = "0.02"
        env["REPRO_EXTERNAL_TRACE_DIR"] = str(tmp_path / "store")
        env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        for index, block in enumerate(blocks):
            script = tmp_path / f"traces_{index}.py"
            script.write_text(block)
            result = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                text=True,
                env=env,
                cwd=str(REPO),
                timeout=300,
            )
            assert result.returncode == 0, result.stderr
            assert result.stdout.strip(), "traces example printed nothing"

    def test_mentions_the_fixture_it_runs(self):
        section = self.section()
        assert "tests/fixtures/demo.cbp" in section
        assert (REPO / "tests" / "fixtures" / "demo.cbp").exists()


class TestChangesSectionReferences:
    def test_design_sections_cited_from_changes_exist(self):
        changes = (REPO / "CHANGES.md").read_text()
        design = (REPO / "DESIGN.md").read_text()
        cited = set(re.findall(r"DESIGN\.md §(\d+)", changes))
        assert cited, "CHANGES.md cites no DESIGN.md sections"
        headings = set(re.findall(r"^## (\d+)\.", design, re.MULTILINE))
        missing = cited - headings
        assert not missing, f"CHANGES.md cites missing DESIGN.md sections: {missing}"


class TestDesignDoc:
    def test_per_experiment_index_names_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for name in re.findall(r"`repro\.harness (\S+?)`", text):
            if name in ("all", "list", "bench"):
                continue
            assert name in EXPERIMENTS, name

    def test_referenced_docs_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for path in re.findall(r"\(docs/(\w+\.md)\)", text):
            assert (REPO / "docs" / path).exists(), path


class TestDocstrings:
    def all_modules(self):
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            if "__main__" in module_info.name:
                continue
            yield importlib.import_module(module_info.name)

    def test_every_module_has_a_docstring(self):
        for module in self.all_modules():
            assert module.__doc__, module.__name__

    def test_every_public_class_has_a_docstring(self):
        for module in self.all_modules():
            for name in dir(module):
                if name.startswith("_"):
                    continue
                obj = getattr(module, name)
                if isinstance(obj, type) and obj.__module__ == module.__name__:
                    assert obj.__doc__, f"{module.__name__}.{name}"

    def test_every_public_function_has_a_docstring(self):
        import types

        for module in self.all_modules():
            for name in dir(module):
                if name.startswith("_"):
                    continue
                obj = getattr(module, name)
                if (
                    isinstance(obj, types.FunctionType)
                    and obj.__module__ == module.__name__
                ):
                    assert obj.__doc__, f"{module.__name__}.{name}"


class TestDocstringLint:
    """Pure-AST mirror of the ruff D-subset contract in pyproject.toml.

    CI's docstring-lint job runs ruff (D100–D104, dunders exempt) over
    ``src/repro/harness`` and ``src/repro/fetch``; this test enforces
    the same rule without requiring ruff to be installed.
    """

    SCOPED = ("src/repro/harness", "src/repro/fetch")

    def violations(self):
        for base in self.SCOPED:
            for path in sorted((REPO / base).rglob("*.py")):
                tree = ast.parse(path.read_text())
                if not ast.get_docstring(tree):
                    yield f"{path}: missing module docstring"
                for node in ast.walk(tree):
                    if not isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        continue
                    if node.name.startswith("_"):
                        continue  # private, and dunders (ruff D105/D107 exempt)
                    if not ast.get_docstring(node):
                        kind = (
                            "class"
                            if isinstance(node, ast.ClassDef)
                            else "function"
                        )
                        yield f"{path}:{node.lineno}: undocumented {kind} {node.name}"

    def test_harness_and_fetch_are_fully_documented(self):
        violations = list(self.violations())
        assert not violations, "\n".join(violations)

    def test_ruff_config_covers_the_same_scope(self):
        config = (REPO / "pyproject.toml").read_text()
        assert "[tool.ruff]" in config
        for rule in ("D100", "D101", "D102", "D103", "D104"):
            assert rule in config
        for base in self.SCOPED:
            assert base in config


class TestLayout:
    def test_architecture_overview_packages_exist(self):
        for package in (
            "isa",
            "cache",
            "predictors",
            "core",
            "fetch",
            "metrics",
            "cost",
            "analysis",
            "workloads",
            "harness",
            "telemetry",
            "service",
        ):
            assert (REPO / "src" / "repro" / package / "__init__.py").exists()

    def test_py_typed_marker(self):
        assert (REPO / "src" / "repro" / "py.typed").exists()

    def test_benchmarks_cover_every_paper_figure(self):
        names = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for required in (
            "bench_table1.py",
            "bench_fig3_rbe.py",
            "bench_fig4_nls.py",
            "bench_fig5_btb.py",
            "bench_fig6_access_time.py",
            "bench_fig7_per_program.py",
            "bench_fig8_cpi.py",
        ):
            assert required in names

"""Property-based tests (hypothesis) on core data structures and the
fetch engine's classification invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.core.nls_table import NLSTable
from repro.fetch.engine import FetchEngine
from repro.fetch.frontends import BTBFrontEnd, NLSTableFrontEnd
from repro.isa.branches import BranchKind
from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.counters import CounterArray, SaturatingCounter
from repro.predictors.pht import GSharePredictor
from repro.predictors.ras import ReturnAddressStack
from repro.workloads.trace import Trace

aligned_addresses = st.integers(min_value=0, max_value=(1 << 30) - 1).map(
    lambda word: word * 4
)


class TestCounterProperties:
    @given(st.lists(st.booleans(), max_size=200), st.integers(1, 4))
    def test_counter_stays_in_range(self, outcomes, bits):
        counter = SaturatingCounter(bits=bits)
        maximum = (1 << bits) - 1
        for outcome in outcomes:
            counter.update(outcome)
            assert 0 <= counter.value <= maximum

    @given(st.lists(st.booleans(), min_size=4, max_size=200))
    def test_counter_converges_to_constant_stream(self, outcomes):
        counter = SaturatingCounter(bits=2)
        for outcome in outcomes:
            counter.update(outcome)
        tail = outcomes[-4:]
        if all(tail):
            assert counter.taken
        if not any(tail):
            assert not counter.taken

    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.booleans()), min_size=1, max_size=300
        )
    )
    def test_counter_array_entries_independent(self, updates):
        array = CounterArray(64)
        mirror = [SaturatingCounter(bits=2) for _ in range(64)]
        for index, taken in updates:
            array.update(index, taken)
            mirror[index].update(taken)
        for index in range(64):
            assert array.predict(index) == mirror[index].taken


class TestRASProperties:
    @given(st.lists(aligned_addresses, max_size=64))
    def test_within_capacity_lifo(self, addresses):
        ras = ReturnAddressStack(64)
        for address in addresses:
            ras.push(address)
        for address in reversed(addresses):
            assert ras.pop() == address

    @given(st.lists(aligned_addresses, min_size=1, max_size=200), st.integers(1, 16))
    def test_depth_never_exceeds_capacity(self, addresses, capacity):
        ras = ReturnAddressStack(capacity)
        for address in addresses:
            ras.push(address)
            assert ras.depth <= capacity

    @given(st.lists(aligned_addresses, min_size=1, max_size=32))
    def test_newest_frames_survive_overflow(self, addresses):
        ras = ReturnAddressStack(8)
        for address in addresses:
            ras.push(address)
        keep = addresses[-8:]
        for address in reversed(keep):
            assert ras.pop() == address


class TestCacheProperties:
    @given(
        st.lists(
            st.integers(0, 4095).map(lambda word: word * 32), min_size=1, max_size=400
        ),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=40)
    def test_access_then_probe_hits(self, lines, assoc):
        cache = InstructionCache(CacheGeometry(8 * 1024, 32, assoc))
        for line in lines:
            result = cache.access(line)
            assert cache.probe(line) == result.way

    @given(
        st.lists(
            st.integers(0, 4095).map(lambda word: word * 32), min_size=1, max_size=400
        ),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=40)
    def test_resident_lines_bounded(self, lines, assoc):
        geometry = CacheGeometry(8 * 1024, 32, assoc)
        cache = InstructionCache(geometry)
        for line in lines:
            cache.access(line)
        assert cache.resident_lines() <= geometry.n_lines
        assert cache.misses <= cache.accesses

    @given(
        st.lists(
            st.integers(0, 4095).map(lambda word: word * 32), min_size=1, max_size=400
        )
    )
    @settings(max_examples=40)
    def test_distinct_lines_lower_bound_misses(self, lines):
        cache = InstructionCache(CacheGeometry(8 * 1024, 32, 1))
        for line in lines:
            cache.access(line)
        assert cache.misses >= min(
            len(set(lines)), 1
        )  # at least the first distinct fill misses


class TestGShareProperties:
    @given(st.lists(st.tuples(aligned_addresses, st.booleans()), max_size=300))
    def test_history_window_bounded(self, stream):
        predictor = GSharePredictor(entries=256)
        for pc, taken in stream:
            predictor.predict(pc)
            predictor.update(pc, taken)
            assert 0 <= predictor.history.value < 256


class TestNLSTableProperties:
    @given(
        st.lists(
            st.tuples(
                aligned_addresses,
                st.sampled_from(
                    [
                        BranchKind.CONDITIONAL,
                        BranchKind.UNCONDITIONAL,
                        BranchKind.CALL,
                        BranchKind.RETURN,
                        BranchKind.INDIRECT,
                    ]
                ),
                st.booleans(),
                aligned_addresses,
            ),
            max_size=300,
        )
    )
    @settings(max_examples=40)
    def test_line_fields_always_in_range(self, updates):
        geometry = CacheGeometry(8 * 1024, 32, 2)
        table = NLSTable(512, geometry)
        for pc, kind, taken, target in updates:
            table.update(pc, kind, taken, target, target_way=0)
            prediction = table.lookup(pc)
            assert 0 <= prediction.line_field < (1 << geometry.line_field_bits)
            assert 0 <= prediction.way < geometry.associativity

    @given(st.lists(st.tuples(aligned_addresses, aligned_addresses), max_size=200))
    @settings(max_examples=40)
    def test_valid_entries_bounded(self, updates):
        geometry = CacheGeometry(8 * 1024, 32, 1)
        table = NLSTable(256, geometry)
        for pc, target in updates:
            table.update(pc, BranchKind.CALL, True, target, 0)
        assert table.valid_entries() <= 256


def random_consistent_trace(draw_blocks):
    """Build a consistent trace from drawn (count, kind, taken) tuples.

    Targets are synthesised to random forward/backward blocks while
    keeping the control-flow invariants intact; returns are aimed at
    synthetic return addresses (stack correctness is not required by
    the invariants being tested here).
    """
    trace = Trace("random")
    pc = 0x10000
    for count, kind, taken in draw_blocks:
        if kind == BranchKind.NOT_A_BRANCH:
            trace.append(pc, count)
            pc = pc + count * 4
            continue
        branch_pc = pc + (count - 1) * 4
        target = ((branch_pc * 2654435761) & 0xFFFFC) + 0x40000
        trace.append(pc, count, kind, taken, target)
        pc = target if taken else branch_pc + 4
    return trace


branch_blocks = st.lists(
    st.tuples(
        st.integers(1, 12),
        st.sampled_from(
            [
                BranchKind.NOT_A_BRANCH,
                BranchKind.CONDITIONAL,
                BranchKind.UNCONDITIONAL,
                BranchKind.CALL,
                BranchKind.RETURN,
                BranchKind.INDIRECT,
            ]
        ),
        st.booleans(),
    ),
    min_size=1,
    max_size=200,
).map(
    lambda blocks: [
        (count, kind, True)
        if kind
        in (
            BranchKind.UNCONDITIONAL,
            BranchKind.CALL,
            BranchKind.RETURN,
            BranchKind.INDIRECT,
        )
        else (count, kind, taken)
        for count, kind, taken in blocks
    ]
)


class TestEngineInvariants:
    @given(branch_blocks)
    @settings(max_examples=30, deadline=None)
    def test_classification_is_exclusive_and_total(self, blocks):
        trace = random_consistent_trace(blocks)
        trace.validate()
        cache = InstructionCache(CacheGeometry(8 * 1024, 32, 1))
        engine = FetchEngine(cache, BTBFrontEnd(BranchTargetBuffer(128, 1)))
        report = engine.run(trace)
        assert report.misfetches + report.mispredicts <= report.n_breaks
        assert report.n_breaks == sum(
            executed for executed, _, _ in report.by_kind.values()
        )
        for executed, misfetched, mispredicted in report.by_kind.values():
            assert misfetched + mispredicted <= executed

    @given(branch_blocks)
    @settings(max_examples=30, deadline=None)
    def test_cache_misses_frontend_independent(self, blocks):
        trace = random_consistent_trace(blocks)
        reports = []
        for make_frontend in (
            lambda cache: BTBFrontEnd(BranchTargetBuffer(128, 1)),
            lambda cache: NLSTableFrontEnd(NLSTable(512, cache.geometry), cache),
        ):
            cache = InstructionCache(CacheGeometry(8 * 1024, 32, 1))
            engine = FetchEngine(cache, make_frontend(cache))
            reports.append(engine.run(trace))
        assert reports[0].icache_misses == reports[1].icache_misses
        assert reports[0].n_instructions == reports[1].n_instructions

    @given(branch_blocks)
    @settings(max_examples=20, deadline=None)
    def test_cpi_at_least_one(self, blocks):
        trace = random_consistent_trace(blocks)
        cache = InstructionCache(CacheGeometry(8 * 1024, 32, 1))
        engine = FetchEngine(cache, BTBFrontEnd(BranchTargetBuffer(128, 1)))
        report = engine.run(trace)
        assert report.cpi >= 1.0


class TestFrontEndDominance:
    """Ordering invariants that must hold on any generated workload."""

    @given(st.sampled_from(["doduc", "espresso", "gcc", "li", "cfront", "groff"]))
    @settings(max_examples=6, deadline=None)
    def test_oracle_and_fallthrough_bound_real_frontends(self, program):
        from repro.harness.config import ArchitectureConfig
        from repro.harness.runner import simulate

        instructions = 30_000
        reports = {
            name: simulate(
                ArchitectureConfig(frontend=name, entries=1024),
                program,
                instructions=instructions,
            )
            for name in ("oracle", "nls-table", "fall-through")
        }
        assert (
            reports["oracle"].misfetches
            <= reports["nls-table"].misfetches
            <= reports["fall-through"].misfetches
        )

    @given(st.sampled_from(["li", "gcc"]), st.sampled_from([512, 1024, 2048]))
    @settings(max_examples=6, deadline=None)
    def test_bigger_nls_table_never_misfetches_more_than_quarter_extra(
        self, program, entries
    ):
        # growing the table can only reduce tag-less collisions; allow
        # a tiny tolerance for incidental cache-state interactions
        from repro.harness.config import ArchitectureConfig
        from repro.harness.runner import simulate

        small = simulate(
            ArchitectureConfig(frontend="nls-table", entries=entries),
            program,
            instructions=30_000,
        )
        big = simulate(
            ArchitectureConfig(frontend="nls-table", entries=entries * 2),
            program,
            instructions=30_000,
        )
        assert big.misfetches <= small.misfetches * 1.05 + 5

"""Tests for the instruction cache: hits, LRU, listeners, statistics."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.cache.replacement import make_policy


def address_mapping_to_set(geometry: CacheGeometry, set_index: int, tag: int) -> int:
    """Build an address that maps to (set_index, tag)."""
    return (tag << (geometry.set_index_bits + geometry.offset_bits)) | (
        set_index << geometry.offset_bits
    )


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self, icache_8k_dm):
        result = icache_8k_dm.access(0x1000)
        assert not result.hit
        result = icache_8k_dm.access(0x1000)
        assert result.hit

    def test_same_line_different_offsets_hit(self, icache_8k_dm):
        icache_8k_dm.access(0x1000)
        assert icache_8k_dm.access(0x101C).hit

    def test_adjacent_lines_are_distinct(self, icache_8k_dm):
        icache_8k_dm.access(0x1000)
        assert not icache_8k_dm.access(0x1020).hit

    def test_probe_does_not_mutate(self, icache_8k_dm):
        assert icache_8k_dm.probe(0x1000) is None
        assert icache_8k_dm.accesses == 0
        icache_8k_dm.access(0x1000)
        assert icache_8k_dm.probe(0x1000) == 0
        assert icache_8k_dm.accesses == 1

    def test_contains(self, icache_8k_dm):
        assert not icache_8k_dm.contains(0x1000)
        icache_8k_dm.access(0x1000)
        assert icache_8k_dm.contains(0x1000)

    def test_direct_mapped_conflict_evicts(self, icache_8k_dm):
        g = icache_8k_dm.geometry
        a = address_mapping_to_set(g, 5, 1)
        b = address_mapping_to_set(g, 5, 2)
        icache_8k_dm.access(a)
        result = icache_8k_dm.access(b)
        assert not result.hit
        assert result.evicted_tag == g.tag(a)
        assert not icache_8k_dm.contains(a)

    def test_miss_rate(self, icache_8k_dm):
        icache_8k_dm.access(0x1000)
        icache_8k_dm.access(0x1000)
        assert icache_8k_dm.miss_rate == pytest.approx(0.5)

    def test_miss_rate_zero_when_untouched(self, icache_8k_dm):
        assert icache_8k_dm.miss_rate == 0.0


class TestAssociativity:
    def test_two_way_holds_two_conflicting_lines(self, icache_8k_2w):
        g = icache_8k_2w.geometry
        a = address_mapping_to_set(g, 3, 1)
        b = address_mapping_to_set(g, 3, 2)
        icache_8k_2w.access(a)
        icache_8k_2w.access(b)
        assert icache_8k_2w.contains(a)
        assert icache_8k_2w.contains(b)

    def test_ways_are_stable_identifiers(self, icache_8k_2w):
        g = icache_8k_2w.geometry
        a = address_mapping_to_set(g, 3, 1)
        b = address_mapping_to_set(g, 3, 2)
        way_a = icache_8k_2w.access(a).way
        way_b = icache_8k_2w.access(b).way
        assert way_a != way_b
        # hits return the same way
        assert icache_8k_2w.access(a).way == way_a
        assert icache_8k_2w.probe(b) == way_b

    def test_lru_evicts_least_recent(self, icache_8k_2w):
        g = icache_8k_2w.geometry
        a = address_mapping_to_set(g, 3, 1)
        b = address_mapping_to_set(g, 3, 2)
        c = address_mapping_to_set(g, 3, 3)
        icache_8k_2w.access(a)
        icache_8k_2w.access(b)
        icache_8k_2w.access(a)  # refresh a; b is now LRU
        icache_8k_2w.access(c)
        assert icache_8k_2w.contains(a)
        assert not icache_8k_2w.contains(b)
        assert icache_8k_2w.contains(c)


class TestListeners:
    def test_evict_listener_fires_with_old_tag(self, icache_8k_dm):
        g = icache_8k_dm.geometry
        events = []
        icache_8k_dm.add_evict_listener(
            lambda s, w, t: events.append(("evict", s, w, t))
        )
        a = address_mapping_to_set(g, 7, 1)
        b = address_mapping_to_set(g, 7, 2)
        icache_8k_dm.access(a)
        assert events == []  # cold fill is not an eviction
        icache_8k_dm.access(b)
        assert events == [("evict", 7, 0, g.tag(a))]

    def test_fill_listener_fires_on_every_fill(self, icache_8k_dm):
        fills = []
        icache_8k_dm.add_fill_listener(lambda s, w, t: fills.append((s, w, t)))
        icache_8k_dm.access(0x1000)
        icache_8k_dm.access(0x1000)
        assert len(fills) == 1


class TestManagement:
    def test_flush_invalidates_but_keeps_stats(self, icache_8k_dm):
        icache_8k_dm.access(0x1000)
        icache_8k_dm.flush()
        assert not icache_8k_dm.contains(0x1000)
        assert icache_8k_dm.accesses == 1

    def test_reset_statistics(self, icache_8k_dm):
        icache_8k_dm.access(0x1000)
        icache_8k_dm.reset_statistics()
        assert icache_8k_dm.accesses == 0
        assert icache_8k_dm.misses == 0
        assert icache_8k_dm.contains(0x1000)

    def test_resident_lines(self, icache_8k_dm):
        assert icache_8k_dm.resident_lines() == 0
        icache_8k_dm.access(0x1000)
        icache_8k_dm.access(0x2000)
        assert icache_8k_dm.resident_lines() == 2


class TestReplacementPolicies:
    def test_make_policy_names(self):
        for name in ("lru", "fifo", "random", "LRU"):
            assert make_policy(name, 4, 2) is not None

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_policy("plru", 4, 2)

    def test_fifo_ignores_touches(self):
        policy = make_policy("fifo", 1, 2)
        policy.insert(0, 0)
        policy.insert(0, 1)
        policy.touch(0, 0)  # would refresh under LRU
        assert policy.victim(0) == 0  # FIFO still evicts the oldest

    def test_lru_victim_rotation(self):
        policy = make_policy("lru", 1, 2)
        policy.insert(0, 0)
        policy.insert(0, 1)
        assert policy.victim(0) == 0
        policy.touch(0, 0)
        assert policy.victim(0) == 1

    def test_random_policy_is_seeded(self):
        a = make_policy("random", 1, 4)
        b = make_policy("random", 1, 4)
        assert [a.victim(0) for _ in range(10)] == [b.victim(0) for _ in range(10)]

    def test_random_policy_reset_replays(self):
        policy = make_policy("random", 1, 4)
        first = [policy.victim(0) for _ in range(10)]
        policy.reset()
        assert [policy.victim(0) for _ in range(10)] == first

"""Golden regression tests.

Everything in the simulation stack is deterministic given (profile,
seed), so these pin exact event counts for one small scenario per
front-end.  A failure here means *behaviour* changed — if the change
is intentional (e.g. a bug fix in the accounting rules or a workload
recalibration), re-derive the numbers and update both the constants
and EXPERIMENTS.md.

Scenario: the `li` workload, 40 000 instructions, default seed, 16K
direct-mapped cache, 30 % warmup, gshare + 32-entry return stack.
"""

import pytest

from repro.harness.config import ArchitectureConfig
from repro.harness.runner import simulate

INSTRUCTIONS = 40_000

#: (frontend kwargs) -> (breaks, misfetches, mispredicts, accesses, misses)
GOLDEN = {
    "nls-table": ((("entries", 1024),), (5103, 486, 637, 8032, 817)),
    "btb": ((("entries", 128),), (5103, 1161, 643, 8032, 817)),
    "nls-cache": ((), (5103, 890, 637, 8032, 817)),
    "johnson": ((), (5103, 678, 1613, 8032, 817)),
}


@pytest.mark.parametrize("frontend", sorted(GOLDEN))
def test_golden_counts(frontend):
    kwargs, expected = GOLDEN[frontend]
    config = ArchitectureConfig(frontend=frontend, cache_kb=16, **dict(kwargs))
    report = simulate(config, "li", instructions=INSTRUCTIONS)
    measured = (
        report.n_breaks,
        report.misfetches,
        report.mispredicts,
        report.icache_accesses,
        report.icache_misses,
    )
    assert measured == expected


def test_golden_ranking_is_the_papers():
    """The pinned numbers themselves encode the paper's story: the
    NLS-table misfetches least, the NLS-cache sits between it and the
    BTB, Johnson pays for its 1-bit implicit direction with
    mispredicts, and the cache behaviour is identical for all."""
    nls = GOLDEN["nls-table"][1]
    nls_cache = GOLDEN["nls-cache"][1]
    btb = GOLDEN["btb"][1]
    johnson = GOLDEN["johnson"][1]
    assert nls[1] < nls_cache[1] < btb[1]  # misfetches
    assert johnson[2] > 2 * nls[2]  # mispredicts
    assert len({golden[3] for _, golden in GOLDEN.values()}) == 1  # accesses
    assert len({golden[4] for _, golden in GOLDEN.values()}) == 1  # misses

"""Tests for Johnson's coupled successor-index design (S6.2)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.core.johnson import JohnsonSuccessorIndex
from repro.isa.branches import BranchKind


def make(associativity=1, per_line=2):
    cache = InstructionCache(CacheGeometry(8 * 1024, 32, associativity))
    return cache, JohnsonSuccessorIndex(cache, predictors_per_line=per_line)


class TestPointerBehaviour:
    def test_cold_invalid(self):
        cache, johnson = make()
        cache.access(0x1000)
        assert not johnson.lookup(0x1000).valid

    def test_taken_writes_target_pointer(self):
        cache, johnson = make()
        cache.access(0x1000)
        johnson.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0, 0x1004)
        prediction = johnson.lookup(0x1000)
        assert prediction.valid
        assert prediction.line_field == cache.geometry.line_field(0x2000)

    def test_not_taken_overwrites_with_fall_through(self):
        # Johnson's one-bit behaviour: every execution rewrites the
        # pointer — unlike the NLS, a not-taken erases the target (S6.2)
        cache, johnson = make()
        cache.access(0x1000)
        johnson.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0, 0x1004)
        johnson.update(0x1000, BranchKind.CONDITIONAL, False, 0x2000, 0, 0x1004)
        prediction = johnson.lookup(0x1000)
        assert prediction.line_field == cache.geometry.line_field(0x1004)

    def test_implied_direction(self):
        cache, johnson = make()
        cache.access(0x1000)
        johnson.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0, 0x1004)
        prediction = johnson.lookup(0x1000)
        assert johnson.implied_taken(prediction, 0x1004)
        johnson.update(0x1000, BranchKind.CONDITIONAL, False, 0x2000, 0, 0x1004)
        prediction = johnson.lookup(0x1000)
        assert not johnson.implied_taken(prediction, 0x1004)

    def test_invalid_implies_not_taken(self):
        cache, johnson = make()
        cache.access(0x1000)
        assert not johnson.implied_taken(johnson.lookup(0x1000), 0x1004)


class TestCoupling:
    def test_eviction_invalidates(self):
        cache, johnson = make()
        a = 0x1000
        b = a + cache.geometry.size_bytes
        cache.access(a)
        johnson.update(a, BranchKind.CONDITIONAL, True, 0x2000, 0, a + 4)
        cache.access(b)
        cache.access(a)
        assert not johnson.lookup(a).valid
        assert johnson.invalidations >= 1

    def test_slots_partition_by_instruction_group(self):
        cache, johnson = make(per_line=2)
        cache.access(0x1000)
        johnson.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0, 0x1004)
        # 0x1010 is in the second group: still cold
        assert not johnson.lookup(0x1010).valid

    def test_update_dropped_when_line_absent(self):
        cache, johnson = make()
        johnson.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0, 0x1004)
        cache.access(0x1000)
        assert not johnson.lookup(0x1000).valid


class TestValidation:
    def test_rejects_bad_predictor_count(self):
        cache = InstructionCache(CacheGeometry(8 * 1024, 32, 1))
        with pytest.raises(ValueError):
            JohnsonSuccessorIndex(cache, predictors_per_line=0)
        with pytest.raises(ValueError):
            JohnsonSuccessorIndex(cache, predictors_per_line=9)

"""Fetch-engine tests on hand-crafted micro-traces.

Each scenario builds a tiny, fully-consistent trace and asserts the
exact misfetch/mispredict classification the paper's accounting rules
prescribe (DESIGN.md §5).
"""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.core.nls_table import NLSTable
from repro.fetch.engine import FetchEngine
from repro.fetch.frontends import (
    BTBFrontEnd,
    FallThroughFrontEnd,
    JohnsonFrontEnd,
    NLSTableFrontEnd,
    OracleFrontEnd,
)
from repro.core.johnson import JohnsonSuccessorIndex
from repro.isa.branches import BranchKind
from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.static_ import AlwaysNotTakenPredictor, AlwaysTakenPredictor
from repro.workloads.trace import Trace

U = BranchKind.UNCONDITIONAL
C = BranchKind.CONDITIONAL
CALL = BranchKind.CALL
RET = BranchKind.RETURN
IND = BranchKind.INDIRECT


def build_engine(frontend_kind="btb", assoc=1, direction=None, entries=128):
    cache = InstructionCache(CacheGeometry(8 * 1024, 32, assoc))
    if frontend_kind == "btb":
        frontend = BTBFrontEnd(BranchTargetBuffer(entries, 1))
    elif frontend_kind == "nls":
        frontend = NLSTableFrontEnd(NLSTable(entries, cache.geometry), cache)
    elif frontend_kind == "johnson":
        frontend = JohnsonFrontEnd(JohnsonSuccessorIndex(cache))
    elif frontend_kind == "oracle":
        frontend = OracleFrontEnd()
    elif frontend_kind == "fall-through":
        frontend = FallThroughFrontEnd()
    else:
        raise ValueError(frontend_kind)
    return FetchEngine(
        cache,
        frontend,
        direction_predictor=direction or AlwaysTakenPredictor(),
    )


def kind_counts(report, kind):
    executed, misfetched, mispredicted = report.by_kind[kind]
    return executed, misfetched, mispredicted


class TestStraightLine:
    def test_no_breaks_no_penalties(self):
        trace = Trace("straight")
        trace.append(0x1000, 64)
        report = build_engine("btb").run(trace)
        assert report.n_breaks == 0
        assert report.bep == 0.0
        assert report.n_instructions == 64

    def test_icache_misses_counted(self):
        trace = Trace("straight")
        trace.append(0x1000, 64)  # 8 lines, all cold
        report = build_engine("btb").run(trace)
        assert report.icache_misses == 8
        # CPI = (64 + 8*5)/64
        assert report.cpi == pytest.approx((64 + 40) / 64)


class TestUnconditional:
    def self_loop(self, rounds):
        trace = Trace("loop")
        for _ in range(rounds):
            trace.append(0x1000, 8, U, True, 0x1000)
        trace.validate()
        return trace

    @pytest.mark.parametrize("frontend", ["btb", "nls"])
    def test_cold_misfetch_then_correct(self, frontend):
        report = build_engine(frontend).run(self_trace := self.self_loop(5))
        executed, misfetched, mispredicted = kind_counts(report, U)
        assert executed == 5
        assert misfetched == 1  # cold structure only
        assert mispredicted == 0

    def test_fall_through_always_misfetches(self):
        report = build_engine("fall-through").run(self.self_loop(5))
        assert kind_counts(report, U)[1] == 5

    def test_oracle_never_misfetches(self):
        report = build_engine("oracle").run(self.self_loop(5))
        assert kind_counts(report, U)[1] == 0


class TestConditionalDirection:
    def taken_loop(self, rounds):
        trace = Trace("cond")
        for _ in range(rounds):
            trace.append(0x1000, 8, C, True, 0x1000)
        trace.validate()
        return trace

    def test_direction_wrong_is_mispredict(self):
        engine = build_engine("btb", direction=AlwaysNotTakenPredictor())
        report = engine.run(self.taken_loop(5))
        executed, misfetched, mispredicted = kind_counts(report, C)
        assert mispredicted == 5
        assert misfetched == 0  # never double-counted

    def test_direction_right_target_cold_is_misfetch(self):
        engine = build_engine("btb", direction=AlwaysTakenPredictor())
        report = engine.run(self.taken_loop(5))
        executed, misfetched, mispredicted = kind_counts(report, C)
        assert mispredicted == 0
        assert misfetched == 1  # only the cold BTB miss

    def test_not_taken_fall_through_is_free(self):
        trace = Trace("nt")
        # block ends in a never-taken conditional; fall-through is the
        # next block
        address = 0x1000
        for _ in range(5):
            trace.append(address, 8, C, False, 0x4000)
            address += 32
        trace.validate()
        engine = build_engine("btb", direction=AlwaysNotTakenPredictor())
        report = engine.run(trace)
        executed, misfetched, mispredicted = kind_counts(report, C)
        assert misfetched == 0 and mispredicted == 0


class TestCallReturn:
    def call_return_rounds(self, rounds):
        """main calls F, F returns, main jumps back; repeated.

        Addresses are staggered so the three branch pcs land in
        different sets of a 128-entry direct-mapped BTB — BTB conflict
        behaviour is tested separately in test_btb.py.
        """
        trace = Trace("callret")
        for _ in range(rounds):
            trace.append(0x1000, 4, CALL, True, 0x2020)  # pc=0x100C, ra=0x1010
            trace.append(0x2020, 4, RET, True, 0x1010)
            trace.append(0x1010, 4, U, True, 0x1000)
        trace.validate()
        return trace

    @pytest.mark.parametrize("frontend", ["btb", "nls"])
    def test_steady_state_all_correct(self, frontend):
        report = build_engine(frontend).run(self.call_return_rounds(6))
        assert kind_counts(report, CALL) == (6, 1, 0)
        # cold return: the structure does not know it is a return, but
        # decode repairs from the (correct) stack -> misfetch once
        assert kind_counts(report, RET) == (6, 1, 0)
        assert kind_counts(report, U) == (6, 1, 0)

    def test_ras_overflow_mispredicts_oldest_frame(self):
        depth = 33  # one deeper than the 32-entry stack
        trace = Trace("deep")
        call_base = 0x0010_0000
        for i in range(depth):
            trace.append(call_base + i * 0x100, 1, CALL, True, call_base + (i + 1) * 0x100)
        # innermost block returns to the last call's return address
        returns = [call_base + i * 0x100 + 4 for i in range(depth - 1, -1, -1)]
        trace.append(call_base + depth * 0x100, 1, RET, True, returns[0])
        for position, address in enumerate(returns[:-1]):
            trace.append(address, 1, RET, True, returns[position + 1])
        trace.append(returns[-1], 1)
        trace.validate()
        report = build_engine("oracle").run(trace)
        executed, misfetched, mispredicted = kind_counts(report, RET)
        assert executed == depth
        assert mispredicted == 1  # exactly the overwritten frame
        assert kind_counts(report, CALL) == (depth, 0, 0)


class TestIndirect:
    def indirect_rounds(self, targets):
        trace = Trace("indirect")
        for target in targets:
            trace.append(0x1000, 4, IND, True, target)  # pc = 0x100C
            trace.append(target, 4, U, True, 0x1000)
        trace.validate()
        return trace

    def test_stable_target_correct_after_cold(self):
        report = build_engine("btb").run(self.indirect_rounds([0x2020] * 5))
        executed, misfetched, mispredicted = kind_counts(report, IND)
        assert executed == 5
        assert mispredicted == 1  # cold only
        assert misfetched == 0  # indirects never misfetch

    def test_changing_target_mispredicts(self):
        targets = [0x2020, 0x3040, 0x2020, 0x3040, 0x2020]
        report = build_engine("btb").run(self.indirect_rounds(targets))
        assert kind_counts(report, IND)[2] == 5  # every switch + cold


class TestNLSDisplacement:
    def displacement_trace(self, rounds):
        """A -> T -> T2 -> A; T2 conflicts with T's cache set, so T is
        always displaced when A branches to it (and vice versa)."""
        a, t = 0x1000, 0x3020
        t2 = t + 8 * 1024  # same I-cache set as t (8K direct-mapped)
        trace = Trace("displace")
        for _ in range(rounds):
            trace.append(a, 8, U, True, t)
            trace.append(t, 8, U, True, t2)
            # t2's block is shorter so its branch pc avoids t's BTB set
            trace.append(t2, 4, U, True, a)
        trace.validate()
        return trace

    def test_nls_pays_misfetch_on_displaced_target(self):
        report = build_engine("nls").run(self.displacement_trace(6))
        executed, misfetched, mispredicted = kind_counts(report, U)
        # A->T misfetches every round after the first (T displaced by
        # T2), T->T2 likewise; T2->A stays resident
        assert executed == 18
        assert misfetched >= 10

    def test_btb_immune_to_displacement(self):
        report = build_engine("btb").run(self.displacement_trace(6))
        executed, misfetched, mispredicted = kind_counts(report, U)
        assert misfetched == 3  # cold allocations only

    def test_cache_misses_identical_across_frontends(self):
        trace = self.displacement_trace(6)
        nls = build_engine("nls").run(trace)
        btb = build_engine("btb").run(trace)
        assert nls.icache_misses == btb.icache_misses


class TestNLSTaglessAliasing:
    def test_alias_misfetch(self):
        # two unconditional branches whose pcs collide in a small table
        # but whose targets differ
        table_span = 64 * 4
        a, b = 0x1008, 0x1008 + table_span
        ta, tb = 0x4000, 0x5030
        trace = Trace("alias")
        for _ in range(4):
            trace.append(a, 1, U, True, ta)   # pc = a
            trace.append(ta, 1, U, True, b)
            trace.append(b, 1, U, True, tb)   # pc = b, same slot as a
            trace.append(tb, 1, U, True, a)
        trace.validate()
        report = build_engine("nls", entries=64).run(trace)
        executed, misfetched, mispredicted = kind_counts(report, U)
        # a and b keep overwriting the shared slot: both misfetch every
        # round; the two linking branches train fine
        assert misfetched >= 2 * 4

    def test_no_alias_with_larger_table(self):
        table_span = 64 * 4
        a, b = 0x1008, 0x1008 + table_span
        ta, tb = 0x4000, 0x5030
        trace = Trace("alias")
        for _ in range(4):
            trace.append(a, 1, U, True, ta)
            trace.append(ta, 1, U, True, b)
            trace.append(b, 1, U, True, tb)
            trace.append(tb, 1, U, True, a)
        trace.validate()
        report = build_engine("nls", entries=1024).run(trace)
        assert kind_counts(report, U)[1] == 4  # cold only


class TestJohnson:
    def test_alternating_conditional_thrashes_pointer(self):
        # taken/not-taken alternation defeats 1-bit implicit direction
        trace = Trace("alt")
        a = 0x1000
        taken_rounds = 6
        for i in range(taken_rounds):
            if i % 2 == 0:
                trace.append(a, 8, C, True, a)  # stay (taken to self)
            else:
                trace.append(a, 8, C, False, a)
                trace.append(a + 32, 1, U, True, a)  # jump back for consistency
        trace.validate()
        report = build_engine("johnson").run(trace)
        executed, misfetched, mispredicted = kind_counts(report, C)
        assert executed == taken_rounds
        # every execution disagrees with the pointer written last time
        assert mispredicted >= taken_rounds - 1

    def test_johnson_predicts_stable_branch(self):
        trace = Trace("stable")
        for _ in range(6):
            trace.append(0x1000, 8, U, True, 0x1000)
        trace.validate()
        report = build_engine("johnson").run(trace)
        assert kind_counts(report, U)[1] <= 1


class TestWarmup:
    def test_warmup_excludes_cold_start(self):
        trace = Trace("loop")
        for _ in range(10):
            trace.append(0x1000, 8, U, True, 0x1000)
        engine = build_engine("btb")
        report = engine.run(trace, warmup_fraction=0.5)
        executed, misfetched, mispredicted = kind_counts(report, U)
        assert executed == 5
        assert misfetched == 0  # the cold misfetch fell in the warmup

    def test_warmup_rejects_bad_fraction(self):
        trace = Trace("loop")
        trace.append(0x1000, 8, U, True, 0x1000)
        with pytest.raises(ValueError):
            build_engine("btb").run(trace, warmup_fraction=1.0)

    def test_zero_warmup_keeps_everything(self):
        trace = Trace("loop")
        for _ in range(10):
            trace.append(0x1000, 8, U, True, 0x1000)
        report = build_engine("btb").run(trace, warmup_fraction=0.0)
        assert report.n_breaks == 10


class TestSetFieldTraining:
    def test_nls_way_field_matches_cache_way(self):
        cache = InstructionCache(CacheGeometry(8 * 1024, 32, 2))
        table = NLSTable(1024, cache.geometry)
        engine = FetchEngine(
            cache,
            NLSTableFrontEnd(table, cache),
            direction_predictor=AlwaysTakenPredictor(),
        )
        trace = Trace("ways")
        for _ in range(3):
            trace.append(0x1000, 8, U, True, 0x3020)
            trace.append(0x3020, 8, U, True, 0x1000)
        trace.validate()
        engine.run(trace)
        prediction = table.lookup(0x1000 + 28)
        assert prediction.valid
        assert prediction.way == cache.probe(0x3020)


class TestReportConsistency:
    def test_counts_add_up(self, small_traces):
        report = build_engine("nls", entries=1024).run(small_traces["li"])
        total = sum(executed for executed, _, _ in report.by_kind.values())
        assert total == report.n_breaks
        assert report.misfetches + report.mispredicts <= report.n_breaks

    def test_cpi_formula(self):
        trace = Trace("loop")
        for _ in range(10):
            trace.append(0x1000, 8, U, True, 0x1000)
        report = build_engine("btb").run(trace)
        expected = (
            report.n_instructions
            + report.bep * report.n_breaks
            + 5.0 * report.icache_misses
        ) / report.n_instructions
        assert report.cpi == pytest.approx(expected)

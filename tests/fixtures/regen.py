#!/usr/bin/env python
"""Regenerate the derived trace fixtures from ``demo.cbp``.

``demo.cbp`` is the hand-written source of truth; this script rebuilds
its siblings deterministically (fixed compression mtime, level):

* ``demo.bt``     — the same control flow in the ChampSim-style binary
  format (header + 18-byte records, docs/TRACES.md)
* ``demo.cbp.gz`` — gzip-compressed copy of ``demo.cbp``
* ``demo.bt.xz``  — xz-compressed copy of ``demo.bt``

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/regen.py
"""

import gzip
import lzma
import os
import sys

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "..", "src"
    ),
)

from repro.workloads.formats import champsim
from repro.workloads.ingest import ingest_file


def main() -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    cbp_path = os.path.join(here, "demo.cbp")
    bt_path = os.path.join(here, "demo.bt")

    trace = ingest_file(cbp_path, fmt="cbp")
    champsim.write(trace, bt_path)

    with open(cbp_path, "rb") as handle:
        text_bytes = handle.read()
    with open(cbp_path + ".gz", "wb") as handle:
        with gzip.GzipFile(
            fileobj=handle, mode="wb", compresslevel=9, mtime=0
        ) as stream:
            stream.write(text_bytes)

    with open(bt_path, "rb") as handle:
        binary_bytes = handle.read()
    with lzma.open(bt_path + ".xz", "wb", preset=9) as stream:
        stream.write(binary_bytes)

    print(f"fixtures regenerated from {cbp_path} ({trace.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

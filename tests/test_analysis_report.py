"""Cross-run analysis & reporting layer (docs/ANALYSIS.md).

Covers the tidy result loader (export directories, the ``EXPORTS.json``
set manifest, the bench trajectory), the statistical comparison
machinery (paired bootstrap, Mann-Whitney fallback, Benjamini-Hochberg
correction, verdicts and the gate), the rendered dashboard, the
``--seed`` replication seam, the Prometheus exposition renderer, and
the ``harness analyze`` CLI end to end: two seeded export sets are
produced by the real CLI, an injected 25% BEP regression must be
flagged *regressed* and fail ``--gate``, while identical sets must
come back all *no-change* with a passing gate — deterministically, so
two invocations write byte-identical verdict tables.
"""

from __future__ import annotations

import json
import os
import re
import shutil

import pytest

from repro.analysis.results import (
    ResultFrame,
    find_bench_history,
    load_bench_history,
    load_export_sets,
    load_store,
    read_export_manifest,
)
from repro.analysis.stat_tests import (
    VERDICTS_SCHEMA,
    _mann_whitney_normal,
    benjamini_hochberg,
    compare,
    gate,
    metric_direction,
    paired_bootstrap_pvalue,
)
from repro.harness.cli import main as cli_main

#: tiny instruction budget — the analysis layer tests plumbing, not BEP
SMOKE = 5_000

#: the experiments the module-scoped export sets contain
SMOKE_EXPERIMENTS = ("fig5", "calibration")


def _export(directory: str, seed: int = 7) -> None:
    """Run the real CLI to produce one seeded export set."""
    for experiment in SMOKE_EXPERIMENTS:
        status = cli_main(
            [
                experiment,
                "--programs",
                "li",
                "espresso",
                "--instructions",
                str(SMOKE),
                "--seed",
                str(seed),
                "--engine",
                "fast",
                "--out",
                directory,
                "--formats",
                "json",
            ]
        )
        assert status == 0


def _relabel(directory, label: str) -> None:
    manifest_path = os.path.join(str(directory), "EXPORTS.json")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    manifest["label"] = label
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=2)


def _scale_fig5(directory, factor: float) -> None:
    """Multiply every fig5 BEP leaf by *factor* (regression injection)."""
    path = os.path.join(str(directory), "fig5.json")
    with open(path) as handle:
        payload = json.load(handle)

    def scale(node):
        if isinstance(node, dict):
            return {key: scale(value) for key, value in node.items()}
        if isinstance(node, (int, float)) and not isinstance(node, bool):
            return node * factor
        return node

    payload["data"] = scale(payload["data"])
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


@pytest.fixture(scope="module")
def export_sets(tmp_path_factory):
    """Three export sets: ``base``, an identical relabelled ``head``,
    and ``regressed`` (fig5 BEP scaled x1.25)."""
    tmp = tmp_path_factory.mktemp("analysis")
    base = tmp / "base"
    _export(str(base))
    head = tmp / "head"
    shutil.copytree(base, head)
    _relabel(head, "head")
    regressed = tmp / "regressed"
    shutil.copytree(base, regressed)
    _relabel(regressed, "regressed")
    _scale_fig5(regressed, 1.25)
    return {"base": str(base), "head": str(head), "regressed": str(regressed)}


# ---------------------------------------------------------------------------
# the tidy loader
# ---------------------------------------------------------------------------


class TestLoader:
    def test_export_manifest_records_set_provenance(self, export_sets):
        manifest = read_export_manifest(export_sets["base"])
        assert manifest["schema"] == "repro-exports/v1"
        assert manifest["experiments"] == sorted(SMOKE_EXPERIMENTS)
        assert manifest["seed"] == 7
        assert manifest["engine"] == "fast"
        assert manifest["instructions"] == SMOKE

    def test_rows_carry_metric_seed_and_git_sha(self, export_sets):
        frame = load_export_sets([export_sets["base"]])
        fig5 = frame.filter(experiment="fig5")
        assert len(fig5) > 0
        assert set(fig5.column("metric")) == {"bep"}
        assert set(fig5.column("seed")) == {7}
        assert set(fig5.column("set")) == {"base"}
        assert all(isinstance(value, float) for value in fig5.column("value"))
        # calibration splits into the scalar error and the rank block
        metrics = set(frame.filter(experiment="calibration").column("metric"))
        assert "mean_abs_error" in metrics
        assert "rank_corr" in metrics

    def test_duplicate_set_labels_are_disambiguated(self, export_sets):
        frame = load_export_sets([export_sets["base"], export_sets["base"]])
        assert frame.unique("set") == ["base", "base#2"]
        # both copies contribute the same number of rows
        assert len(frame.filter(set="base")) == len(frame.filter(set="base#2"))

    def test_frame_verbs(self, export_sets):
        frame = load_export_sets([export_sets["base"]])
        experiments = frame.unique("experiment")
        assert experiments == sorted(SMOKE_EXPERIMENTS)
        grouped = frame.group_by("experiment", "metric")
        assert all(len(rows) > 0 for rows in grouped.values())
        assert len(frame.filter(experiment="nope")) == 0

    def test_to_pandas_requires_the_analysis_extra(self, export_sets):
        frame = load_export_sets([export_sets["base"]])
        try:
            import pandas  # noqa: F401
        except ImportError:
            with pytest.raises(ImportError, match=r"\[analysis\]"):
                frame.to_pandas()
        else:  # pragma: no cover - env-dependent
            dataframe = frame.to_pandas()
            assert len(dataframe) == len(frame)

    def test_load_store_flattens_cells(self, tmp_path):
        from repro.harness.config import ArchitectureConfig
        from repro.harness.runner import RunPlan, RunRequest
        from repro.service.store import ResultStore

        store = ResultStore(str(tmp_path / "store.sqlite"))
        request = RunRequest(
            config=ArchitectureConfig(frontend="btb", entries=32, cache_kb=8),
            program="li",
            instructions=2_000,
        )
        reports = RunPlan([request]).execute()
        store.put(request, reports[request])
        store.close()
        rows = load_store(str(tmp_path / "store.sqlite"))
        assert rows, "one stored cell should yield metric rows"
        assert {row["metric"] for row in rows} >= {"bep", "cpi"}
        assert all(row["set"] == "store" for row in rows)
        assert all(row["program"] == "li" for row in rows)


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------


class TestStatTests:
    def test_benjamini_hochberg_known_values(self):
        assert benjamini_hochberg([0.01, 0.02, 0.03, 0.04]) == pytest.approx(
            [0.04, 0.04, 0.04, 0.04]
        )
        q_values = benjamini_hochberg([0.001, 0.5])
        assert q_values[0] == pytest.approx(0.002)
        assert q_values[1] == pytest.approx(0.5)
        assert benjamini_hochberg([]) == []

    def test_paired_bootstrap_extremes(self):
        assert paired_bootstrap_pvalue([0.0, 0.0, 0.0]) == 1.0
        consistent = [0.1, 0.11, 0.09, 0.12, 0.1, 0.1, 0.11, 0.09]
        assert paired_bootstrap_pvalue(consistent) < 0.05

    def test_paired_bootstrap_is_seed_deterministic(self):
        diffs = [0.03, -0.01, 0.05, 0.02, 0.04]
        assert paired_bootstrap_pvalue(diffs, seed=5) == paired_bootstrap_pvalue(
            diffs, seed=5
        )

    def test_mann_whitney_fallback(self):
        separated = _mann_whitney_normal(
            [1.0, 1.1, 1.2, 1.3, 1.1, 1.2], [2.0, 2.1, 2.2, 2.3, 2.1, 2.2]
        )
        assert separated < 0.01
        identical = _mann_whitney_normal([1.0] * 6, [1.0] * 6)
        assert identical == pytest.approx(1.0)

    def test_metric_direction(self):
        assert metric_direction("bep") == "lower"
        assert metric_direction("accuracy") == "higher"
        assert metric_direction("flush_penalty") == "lower"
        assert metric_direction("cells_per_s") == "higher"
        assert metric_direction("mystery") is None

    def test_compare_is_deterministic(self, export_sets):
        frame = load_export_sets(
            [export_sets["base"], export_sets["regressed"]]
        )
        first = compare(frame, "base", "regressed")
        second = compare(frame, "base", "regressed")
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert first["schema"] == VERDICTS_SCHEMA

    def test_identical_sets_are_all_no_change(self, export_sets):
        frame = load_export_sets([export_sets["base"], export_sets["head"]])
        verdicts = compare(frame, "base", "head")
        assert verdicts["counts"]["regressed"] == 0
        assert verdicts["counts"]["improved"] == 0
        assert all(
            comparison["verdict"] == "no-change"
            for comparison in verdicts["comparisons"]
        )
        assert gate(verdicts) == []

    def test_injected_regression_is_flagged_and_gated(self, export_sets):
        frame = load_export_sets(
            [export_sets["base"], export_sets["regressed"]]
        )
        verdicts = compare(frame, "base", "regressed")
        flagged = {
            (comparison["experiment"], comparison["verdict"])
            for comparison in verdicts["comparisons"]
        }
        assert ("fig5", "regressed") in flagged
        violations = gate(verdicts)
        assert len(violations) == 1
        assert "fig5.bep" in violations[0]
        assert "+25.0%" in violations[0]


# ---------------------------------------------------------------------------
# the --seed replication seam
# ---------------------------------------------------------------------------


class TestWithSeed:
    def test_with_seed_rewrites_cells_and_aliases_reports(self):
        from repro.harness.experiments import SPECS
        from repro.harness.spec import with_seed

        plan = SPECS["fig5"].plan(programs=["li"], instructions=2_000)
        assert with_seed([plan], None) == [plan]
        (seeded,) = with_seed([plan], 7)
        assert all(cell.seed == 7 for cell in seeded.cells)
        assert {cell.seed for cell in plan.cells} == {None}
        # the wrapped finish must alias seeded reports back under the
        # default-seed keys the original renderer closed over
        result = seeded.run()
        assert result.name == "fig5"
        assert result.data, "the renderer found its (aliased) reports"


# ---------------------------------------------------------------------------
# prometheus exposition (unit level; the live endpoint is covered in
# tests/test_service.py)
# ---------------------------------------------------------------------------

#: one exposition sample line: name{labels} value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+-]+$"
)


class TestExposition:
    def test_render_is_valid_and_zero_fills_well_known_counters(self):
        from repro.telemetry.core import Registry
        from repro.telemetry.exposition import (
            WELL_KNOWN_COUNTERS,
            metric_name,
            render_prometheus,
        )

        registry = Registry(enabled=True)
        registry.counter("store.hits").add(3)
        timer = registry.timer("engine.replay")
        timer.total_s, timer.count = 0.25, 1
        text = render_prometheus(
            registry,
            job_counts={"completed": 2, "queued": 0},
            store_stats={"entries": 5, "payload_bytes": 1234, "db_bytes": 4096},
        )
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert _SAMPLE.match(line), line
        assert "repro_store_hits_total 3" in text
        assert "repro_store_misses_total 0" in text  # zero-filled
        assert "repro_engine_replay_seconds_total 0.25" in text
        assert "repro_engine_replay_timer_count_total 1" in text
        assert 'repro_service_jobs{state="completed"} 2' in text
        assert "repro_store_entries 5" in text
        for name in WELL_KNOWN_COUNTERS:
            assert f"{metric_name(name)}_total" in text

    def test_metric_name_sanitisation(self):
        from repro.telemetry.exposition import metric_name

        assert metric_name("store.hits") == "repro_store_hits"
        assert metric_name("weird name-1") == "repro_weird_name_1"
        assert metric_name("9lives") == "repro__9lives"


# ---------------------------------------------------------------------------
# bench trajectory
# ---------------------------------------------------------------------------


class TestBenchHistory:
    def test_append_and_load_round_trip(self, tmp_path):
        from repro.telemetry.bench import (
            BENCH_HISTORY_SCHEMA,
            append_history,
        )

        suite = {
            "engine": {
                "kind": "engine",
                "results": {"fast_serial": {"cells_per_s": 100.0}},
            },
            "sweep": {
                "kind": "sweep",
                "results": {"jobs-2": {"cells_per_s": 180.0}},
            },
        }
        path = append_history(suite, str(tmp_path))
        append_history(suite, str(tmp_path))
        entries = load_bench_history(path)
        assert len(entries) == 4  # two appends x two kinds
        assert [entry["kind"] for entry in entries] == [
            "engine",
            "sweep",
            "engine",
            "sweep",
        ]
        assert all(entry["schema"] == BENCH_HISTORY_SCHEMA for entry in entries)
        assert entries[0]["results"]["fast_serial"]["cells_per_s"] == 100.0
        assert find_bench_history([str(tmp_path)]) == path

    def test_torn_and_foreign_lines_are_skipped(self, tmp_path):
        from repro.telemetry.bench import BENCH_HISTORY_SCHEMA

        path = tmp_path / "BENCH_history.ndjson"
        good = json.dumps(
            {"schema": BENCH_HISTORY_SCHEMA, "kind": "engine", "results": {}}
        )
        path.write_text(f'{good}\n{{"schema": "other/v1"}}\n{{"torn...\n')
        entries = load_bench_history(str(path))
        assert len(entries) == 1
        assert load_bench_history(str(tmp_path / "absent.ndjson")) == []


# ---------------------------------------------------------------------------
# the analyze CLI, end to end
# ---------------------------------------------------------------------------


class TestAnalyzeCLI:
    def test_identical_sets_pass_the_gate(self, export_sets, tmp_path, capsys):
        out = str(tmp_path / "report")
        status = cli_main(
            [
                "analyze",
                "--exports",
                export_sets["base"],
                export_sets["head"],
                "--out",
                out,
                "--format",
                "md",
                "--gate",
            ]
        )
        assert status == 0
        printed = capsys.readouterr().out
        assert "gate passed" in printed
        assert os.path.exists(os.path.join(out, "REPORT.md"))
        with open(os.path.join(out, "verdicts.json")) as handle:
            verdicts = json.load(handle)
        assert verdicts["schema"] == VERDICTS_SCHEMA
        assert verdicts["counts"]["regressed"] == 0

    def test_injected_regression_fails_the_gate(
        self, export_sets, tmp_path, capsys
    ):
        out = str(tmp_path / "report")
        status = cli_main(
            [
                "analyze",
                "--exports",
                export_sets["base"],
                export_sets["regressed"],
                "--baseline",
                "base",
                "--out",
                out,
                "--gate",
            ]
        )
        assert status == 1
        printed = capsys.readouterr().out
        assert "gate FAILED" in printed
        assert "fig5.bep" in printed
        html_path = os.path.join(out, "index.html")
        with open(html_path) as handle:
            html = handle.read()
        assert "<svg" in html
        assert "Figure 5" in html
        with open(os.path.join(out, "verdicts.json")) as handle:
            verdicts = json.load(handle)
        assert verdicts["counts"]["regressed"] == 1

    def test_verdicts_are_byte_deterministic(self, export_sets, tmp_path):
        outputs = []
        for run in ("one", "two"):
            out = str(tmp_path / run)
            cli_main(
                [
                    "analyze",
                    "--exports",
                    export_sets["base"],
                    export_sets["regressed"],
                    "--out",
                    out,
                ]
            )
            with open(os.path.join(out, "verdicts.json"), "rb") as handle:
                outputs.append(handle.read())
        assert outputs[0] == outputs[1]

    def test_baseline_may_be_a_directory(self, export_sets, tmp_path, capsys):
        status = cli_main(
            [
                "analyze",
                "--exports",
                export_sets["regressed"],
                export_sets["base"],
                "--baseline",
                export_sets["base"],
                "--out",
                str(tmp_path / "report"),
            ]
        )
        assert status == 0
        printed = capsys.readouterr().out
        assert "'base' vs 'regressed'" in printed
        assert "1 regressed" in printed

    def test_unknown_baseline_is_an_error(self, export_sets, tmp_path, capsys):
        status = cli_main(
            [
                "analyze",
                "--exports",
                export_sets["base"],
                export_sets["head"],
                "--baseline",
                "nope",
                "--out",
                str(tmp_path / "report"),
            ]
        )
        assert status == 2
        assert "matches no set label" in capsys.readouterr().out

    def test_analyze_requires_inputs(self):
        with pytest.raises(SystemExit):
            cli_main(["analyze"])

    def test_analyze_gate_takes_no_value(self, export_sets):
        with pytest.raises(SystemExit):
            cli_main(
                ["analyze", "--exports", export_sets["base"], "--gate", "x"]
            )

    def test_bench_gate_requires_a_path(self):
        with pytest.raises(SystemExit):
            cli_main(["bench", "--smoke", "--gate"])

    def test_single_set_is_an_error(self, export_sets, capsys):
        status = cli_main(["analyze", "--exports", export_sets["base"]])
        assert status == 2
        assert "at least two result sets" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# dashboard rendering (direct, without the CLI)
# ---------------------------------------------------------------------------


class TestRendering:
    def test_dashboard_renders_figures_and_drilldowns(
        self, export_sets, tmp_path
    ):
        from repro.analysis.rendering import render_dashboard

        frame = load_export_sets(
            [export_sets["base"], export_sets["regressed"]]
        )
        verdicts = compare(frame, "base", "regressed")
        written = render_dashboard(
            frame, verdicts, str(tmp_path), fmt="html", backend="svg"
        )
        assert any(path.endswith("index.html") for path in written)
        with open(os.path.join(str(tmp_path), "index.html")) as handle:
            html = handle.read()
        assert html.count("<svg") >= 1
        assert "Figure 5" in html
        assert "Table 1 calibration audit" in html
        assert "regressed" in html

    def test_markdown_dashboard(self, export_sets, tmp_path):
        from repro.analysis.rendering import render_dashboard

        frame = load_export_sets([export_sets["base"], export_sets["head"]])
        verdicts = compare(frame, "base", "head")
        render_dashboard(frame, verdicts, str(tmp_path), fmt="md")
        with open(os.path.join(str(tmp_path), "REPORT.md")) as handle:
            markdown = handle.read()
        assert "| experiment |" in markdown or "| metric |" in markdown
        assert "no-change" in markdown

    def test_grouped_bars_svg_is_self_contained(self):
        from repro.analysis.figures import grouped_bars

        svg = grouped_bars(
            "Demo",
            [("a", {"s1": 0.1, "s2": 0.15}), ("b", {"s1": 0.2})],
            ["s1", "s2"],
            y_label="bep",
            backend="svg",
        )
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "Demo" in svg


# ---------------------------------------------------------------------------
# an empty ResultFrame stays safe end to end
# ---------------------------------------------------------------------------


def test_empty_frame_verbs():
    frame = ResultFrame()
    assert len(frame) == 0
    assert frame.unique("set") == []
    assert frame.filter(set="x").rows == []
    assert frame.group_by("set") == {}

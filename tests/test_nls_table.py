"""Tests for the NLS entry semantics and the tag-less NLS-table."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.core.nls_entry import (
    INVALID_PREDICTION,
    NLSEntryType,
    NLSPrediction,
    nls_type_for,
    verify_nls_target,
)
from repro.core.nls_table import NLSTable
from repro.isa.branches import BranchKind


class TestTypeField:
    def test_mapping_matches_paper_table(self):
        assert nls_type_for(BranchKind.RETURN) == NLSEntryType.RETURN
        assert nls_type_for(BranchKind.CONDITIONAL) == NLSEntryType.CONDITIONAL
        for kind in (BranchKind.UNCONDITIONAL, BranchKind.CALL, BranchKind.INDIRECT):
            assert nls_type_for(kind) == NLSEntryType.OTHER

    def test_rejects_non_branch(self):
        with pytest.raises(ValueError):
            nls_type_for(BranchKind.NOT_A_BRANCH)

    def test_invalid_prediction_is_invalid(self):
        assert not INVALID_PREDICTION.valid
        assert NLSPrediction(NLSEntryType.OTHER, 3, 0).valid


class TestVerification:
    def setup_method(self):
        self.cache = InstructionCache(CacheGeometry(8 * 1024, 32, 2))
        self.geometry = self.cache.geometry

    def prediction_for(self, target, way):
        return NLSPrediction(NLSEntryType.OTHER, self.geometry.line_field(target), way)

    def test_correct_when_resident_at_predicted_way(self):
        target = 0x2000
        way = self.cache.access(target).way
        assert verify_nls_target(self.prediction_for(target, way), target, self.cache)

    def test_fails_when_line_displaced(self):
        # displacement -> misfetch plus the cache miss (S7)
        target = 0x2000
        way = self.cache.access(target).way
        prediction = self.prediction_for(target, way)
        self.cache.flush()
        assert not verify_nls_target(prediction, target, self.cache)

    def test_fails_on_wrong_way(self):
        target = 0x2000
        way = self.cache.access(target).way
        assert not verify_nls_target(
            self.prediction_for(target, way ^ 1), target, self.cache
        )

    def test_fails_on_line_field_mismatch(self):
        target = 0x2000
        way = self.cache.access(target).way
        other = target + 4  # different instruction offset
        assert not verify_nls_target(self.prediction_for(other, way), target, self.cache)

    def test_fails_on_invalid(self):
        assert not verify_nls_target(INVALID_PREDICTION, 0x2000, self.cache)

    def test_direct_mapped_ignores_way_field(self):
        cache = InstructionCache(CacheGeometry(8 * 1024, 32, 1))
        target = 0x2000
        cache.access(target)
        prediction = NLSPrediction(
            NLSEntryType.OTHER, cache.geometry.line_field(target), way=1
        )
        assert verify_nls_target(prediction, target, cache)


class TestNLSTable:
    def setup_method(self):
        self.geometry = CacheGeometry(8 * 1024, 32, 1)
        self.table = NLSTable(1024, self.geometry)

    def test_cold_lookup_is_invalid(self):
        assert not self.table.lookup(0x1000).valid

    def test_taken_update_trains_all_fields(self):
        self.table.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0)
        prediction = self.table.lookup(0x1000)
        assert prediction.type == NLSEntryType.CONDITIONAL
        assert prediction.line_field == self.geometry.line_field(0x2000)

    def test_not_taken_updates_type_only(self):
        # a fall-through execution "should not erase the pointer to
        # the target instruction" (S4)
        self.table.update(0x1000, BranchKind.CONDITIONAL, True, 0x2000, 0)
        self.table.update(0x1000, BranchKind.CONDITIONAL, False)
        prediction = self.table.lookup(0x1000)
        assert prediction.line_field == self.geometry.line_field(0x2000)

    def test_not_taken_still_sets_type(self):
        self.table.update(0x1000, BranchKind.CONDITIONAL, False)
        assert self.table.lookup(0x1000).type == NLSEntryType.CONDITIONAL

    def test_tagless_aliasing(self):
        # two branches one table-span apart share a slot
        stride = 1024 * 4
        self.table.update(0x1000, BranchKind.CALL, True, 0x2000, 0)
        prediction = self.table.lookup(0x1000 + stride)
        assert prediction.valid  # tag-less: the alias is served
        assert prediction.type == NLSEntryType.OTHER

    def test_alias_rate_tracked(self):
        stride = 1024 * 4
        self.table.update(0x1000, BranchKind.CALL, True, 0x2000, 0)
        self.table.lookup(0x1000)
        self.table.lookup(0x1000 + stride)
        assert self.table.alias_lookups == 1
        assert self.table.alias_rate == pytest.approx(0.5)

    def test_way_field_stored(self):
        geometry = CacheGeometry(8 * 1024, 32, 4)
        table = NLSTable(512, geometry)
        table.update(0x1000, BranchKind.CALL, True, 0x2000, target_way=3)
        assert table.lookup(0x1000).way == 3

    def test_valid_entries_and_flush(self):
        self.table.update(0x1000, BranchKind.CALL, True, 0x2000, 0)
        self.table.update(0x1004, BranchKind.RETURN, True, 0x3000, 0)
        assert self.table.valid_entries() == 2
        self.table.flush()
        assert self.table.valid_entries() == 0

    def test_index_uses_word_address(self):
        assert self.table.index_of(0x0) == 0
        assert self.table.index_of(0x4) == 1
        assert self.table.index_of(1024 * 4) == 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            NLSTable(1000, self.geometry)

    def test_paper_sizes(self):
        for entries in (512, 1024, 2048):
            assert NLSTable(entries, self.geometry).entries == entries

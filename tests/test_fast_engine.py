"""Differential tests: the vectorised fast engine vs the reference loop.

The fast engine's contract is *byte-identical reports*: for every
configuration in its supported matrix, ``engine="fast"`` must produce
exactly the :class:`~repro.metrics.report.SimulationReport` the
reference per-branch loop produces — counters, per-kind breakdowns,
front-end mismatch histograms, attribution snapshots and telemetry
included.  Configurations outside the matrix must fall back to the
reference engine with the reason stamped for the run manifest.
"""

import json
from dataclasses import replace

import pytest

from repro.fetch.engine import FetchEngine
from repro.fetch.fast_engine import FastEngine, unsupported_reason
from repro.harness.config import ArchitectureConfig
from repro.harness.export import _jsonable
from repro.harness.runner import RunRequest, run_request
from repro.harness.spec import ExperimentPlan, ExperimentResult, with_engine
from repro.telemetry.core import Registry, use
from repro.workloads.corpus import generate_trace

#: one representative configuration per supported front-end family
SUPPORTED = [
    ("nls-table", {"entries": 1024}),
    ("btb", {"entries": 128}),
    ("steely-sager", {"entries": 512}),
    ("oracle", {}),
    ("fall-through", {}),
]

INSTRUCTIONS = 40_000


def run_both(config, program="li", instructions=INSTRUCTIONS, warmup=0.0):
    """Run *config* through both engines on the same trace."""
    trace = generate_trace(program, instructions=instructions)
    reference = (
        replace(config, engine="reference")
        .build()
        .run(trace, label=config.label(), warmup_fraction=warmup)
    )
    engine = replace(config, engine="fast").build()
    assert isinstance(engine, FastEngine), "config unexpectedly unsupported"
    fast = engine.run(trace, label=config.label(), warmup_fraction=warmup)
    return reference, fast


def as_json(report) -> str:
    return json.dumps(_jsonable(report), sort_keys=True)


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("frontend,kwargs", SUPPORTED)
    def test_reports_identical(self, frontend, kwargs):
        config = ArchitectureConfig(frontend=frontend, **kwargs)
        reference, fast = run_both(config, warmup=0.3)
        assert reference == fast
        assert reference.frontend_stats == fast.frontend_stats
        assert as_json(reference) == as_json(fast)

    @pytest.mark.parametrize("frontend,kwargs", SUPPORTED)
    def test_reports_identical_with_flushes(self, frontend, kwargs):
        config = ArchitectureConfig(
            frontend=frontend, flush_interval=7_777, **kwargs
        )
        reference, fast = run_both(config)
        assert reference == fast
        assert as_json(reference) == as_json(fast)

    def test_second_program(self):
        config = ArchitectureConfig(frontend="nls-table")
        reference, fast = run_both(config, program="espresso", warmup=0.3)
        assert as_json(reference) == as_json(fast)

    def test_small_cache_pressure(self):
        config = ArchitectureConfig(frontend="nls-table", cache_kb=1)
        reference, fast = run_both(config)
        assert as_json(reference) == as_json(fast)

    def test_btb_allocate_all(self):
        config = ArchitectureConfig(
            frontend="btb", entries=128, btb_allocate="all"
        )
        reference, fast = run_both(config)
        assert as_json(reference) == as_json(fast)

    def test_attribution_snapshots_identical(self):
        # attribution is compare=False on the report, so check explicitly
        config = ArchitectureConfig(
            frontend="nls-table", attribution=True, attribution_sample=8
        )
        reference, fast = run_both(config, warmup=0.3)
        assert reference == fast
        assert reference.attribution == fast.attribution

    def test_telemetry_counters_identical(self):
        trace = generate_trace("li", instructions=INSTRUCTIONS)
        totals = {}
        for engine_name in ("reference", "fast"):
            config = ArchitectureConfig(frontend="nls-table", engine=engine_name)
            registry = Registry(enabled=True)
            with use(registry):
                config.build().run(trace, label=config.label())
            totals[engine_name] = sorted(
                (event["name"], event["value"])
                for event in registry.events()
                if event.get("event") == "counter"
                and event["name"].startswith("engine.")
            )
        assert totals["reference"] == totals["fast"]


class TestSupportedMatrix:
    def test_supported_configs_have_no_reason(self):
        for frontend, kwargs in SUPPORTED:
            config = ArchitectureConfig(frontend=frontend, **kwargs)
            assert unsupported_reason(config) is None, frontend

    @pytest.mark.parametrize(
        "override",
        [
            {"frontend": "nls-cache"},
            {"frontend": "johnson"},
            {"frontend": "coupled-btb"},
            {"frontend": "btb", "btb_assoc": 4},
            {"cache_assoc": 2},
            {"direction": "bimodal"},
            {"model_wrong_path": True},
        ],
    )
    def test_unsupported_configs_name_a_reason(self, override):
        config = ArchitectureConfig(**override)
        assert unsupported_reason(config)

    def test_fallback_builds_reference_engine(self):
        config = ArchitectureConfig(frontend="nls-cache", engine="fast")
        engine = config.build()
        assert isinstance(engine, FetchEngine)
        assert engine.engine_name == "reference"
        assert engine.engine_fallback  # the stamped reason

    def test_fast_engine_rejects_unsupported_config(self):
        with pytest.raises(ValueError):
            FastEngine(ArchitectureConfig(frontend="johnson"))


class TestHarnessWiring:
    def test_config_validates_engine(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(engine="bogus")

    def test_describe_includes_non_default_engine(self):
        assert ArchitectureConfig(engine="fast").describe()["engine"] == "fast"
        assert "engine" not in ArchitectureConfig().describe()

    def test_manifest_stamps_engine(self):
        request = RunRequest(
            config=ArchitectureConfig(frontend="nls-table", engine="fast"),
            program="li",
            instructions=20_000,
        )
        report = run_request(request)
        assert report.manifest.extra["engine"] == "fast"
        assert "engine_fallback" not in report.manifest.extra

    def test_manifest_stamps_fallback(self):
        request = RunRequest(
            config=ArchitectureConfig(frontend="nls-cache", engine="fast"),
            program="li",
            instructions=20_000,
        )
        report = run_request(request)
        assert report.manifest.extra["engine"] == "reference"
        assert report.manifest.extra["engine_fallback"]

    def test_manifest_stamps_reference_default(self):
        request = RunRequest(
            config=ArchitectureConfig(frontend="nls-table"),
            program="li",
            instructions=20_000,
        )
        report = run_request(request)
        assert report.manifest.extra["engine"] == "reference"

    def test_with_engine_rewrites_cells_and_aliases_reports(self):
        cells = tuple(
            RunRequest(
                config=ArchitectureConfig(frontend="nls-table"),
                program=program,
                instructions=20_000,
            )
            for program in ("li", "espresso")
        )

        def finish(reports):
            # renderers index by the ORIGINAL reference-engine cells
            return ExperimentResult(
                name="t",
                title="t",
                text="",
                data={"breaks": [reports[cell].n_breaks for cell in cells]},
            )

        (plan,) = with_engine(
            [ExperimentPlan(name="t", cells=cells, finish=finish)], "fast"
        )
        assert all(cell.config.engine == "fast" for cell in plan.cells)
        result = plan.run()
        assert all(n > 0 for n in result.data["breaks"])

    def test_with_engine_reference_is_identity(self):
        plan = ExperimentPlan(name="t", cells=(), finish=lambda reports: None)
        assert with_engine([plan], "reference") == [plan]


class TestPackedTrace:
    def test_packed_is_memoised_and_invalidated(self):
        trace = generate_trace("li", instructions=10_000)
        packed = trace.packed()
        assert trace.packed() is packed
        assert packed["starts"].tolist() == trace.starts

    def test_save_load_roundtrip_preserves_packed(self, tmp_path):
        trace = generate_trace("li", instructions=10_000)
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = type(trace).load(path)
        assert loaded.starts == trace.starts
        assert loaded.kinds == trace.kinds
        assert loaded._packed is not None
        assert loaded.packed()["targets"].tolist() == trace.targets

"""Differential tests: the vectorised fast engine vs the reference loop.

The fast engine's contract is *byte-identical reports*: for every
configuration in its supported matrix, ``engine="fast"`` must produce
exactly the :class:`~repro.metrics.report.SimulationReport` the
reference per-branch loop produces — counters, per-kind breakdowns,
front-end mismatch histograms, attribution snapshots and telemetry
included.  Configurations outside the matrix must fall back to the
reference engine with the reason stamped for the run manifest.
"""

import json
import random
from dataclasses import replace

import pytest

from repro.fetch.capability import (
    EngineClass,
    FallbackReason,
    engine_class,
    fallback_reason,
)
from repro.fetch.engine import FetchEngine
from repro.fetch.fast_engine import (
    FastEngine,
    TraceReplayContext,
    unsupported_reason,
)
from repro.harness.config import ArchitectureConfig
from repro.harness.export import _jsonable
from repro.harness.runner import RunPlan, RunRequest, run_request
from repro.harness.spec import ExperimentPlan, ExperimentResult, with_engine
from repro.telemetry.core import Registry, use
from repro.workloads.corpus import generate_trace

#: one representative configuration per supported front-end family —
#: the matrix is closed over every paper configuration, including the
#: associative cache + NLS-cache/Johnson/coupled-BTB combinations
SUPPORTED = [
    ("nls-table", {"entries": 1024}),
    ("nls-table", {"entries": 512, "cache_assoc": 4}),
    ("btb", {"entries": 128}),
    ("btb", {"entries": 128, "btb_assoc": 4}),
    ("steely-sager", {"entries": 512}),
    ("nls-cache", {}),
    ("nls-cache", {"nls_cache_policy": "lru"}),
    ("nls-cache", {"cache_assoc": 2, "cache_kb": 4}),
    ("johnson", {}),
    ("johnson", {"cache_assoc": 2, "cache_kb": 4}),
    ("coupled-btb", {"entries": 256}),
    ("coupled-btb", {"entries": 128, "btb_assoc": 4}),
    ("oracle", {}),
    ("fall-through", {}),
]

INSTRUCTIONS = 40_000


def run_both(config, program="li", instructions=INSTRUCTIONS, warmup=0.0):
    """Run *config* through both engines on the same trace."""
    trace = generate_trace(program, instructions=instructions)
    reference = (
        replace(config, engine="reference")
        .build()
        .run(trace, label=config.label(), warmup_fraction=warmup)
    )
    engine = replace(config, engine="fast").build()
    assert isinstance(engine, FastEngine), "config unexpectedly unsupported"
    fast = engine.run(trace, label=config.label(), warmup_fraction=warmup)
    return reference, fast


def as_json(report) -> str:
    return json.dumps(_jsonable(report), sort_keys=True)


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("frontend,kwargs", SUPPORTED)
    def test_reports_identical(self, frontend, kwargs):
        config = ArchitectureConfig(frontend=frontend, **kwargs)
        reference, fast = run_both(config, warmup=0.3)
        assert reference == fast
        assert reference.frontend_stats == fast.frontend_stats
        assert as_json(reference) == as_json(fast)

    @pytest.mark.parametrize("frontend,kwargs", SUPPORTED)
    def test_reports_identical_with_flushes(self, frontend, kwargs):
        config = ArchitectureConfig(
            frontend=frontend, flush_interval=7_777, **kwargs
        )
        reference, fast = run_both(config)
        assert reference == fast
        assert as_json(reference) == as_json(fast)

    def test_second_program(self):
        config = ArchitectureConfig(frontend="nls-table")
        reference, fast = run_both(config, program="espresso", warmup=0.3)
        assert as_json(reference) == as_json(fast)

    def test_small_cache_pressure(self):
        config = ArchitectureConfig(frontend="nls-table", cache_kb=1)
        reference, fast = run_both(config)
        assert as_json(reference) == as_json(fast)

    def test_btb_allocate_all(self):
        config = ArchitectureConfig(
            frontend="btb", entries=128, btb_allocate="all"
        )
        reference, fast = run_both(config)
        assert as_json(reference) == as_json(fast)

    def test_attribution_snapshots_identical(self):
        # attribution is compare=False on the report, so check explicitly
        config = ArchitectureConfig(
            frontend="nls-table", attribution=True, attribution_sample=8
        )
        reference, fast = run_both(config, warmup=0.3)
        assert reference == fast
        assert reference.attribution == fast.attribution

    def test_telemetry_counters_identical(self):
        trace = generate_trace("li", instructions=INSTRUCTIONS)
        totals = {}
        for engine_name in ("reference", "fast"):
            config = ArchitectureConfig(frontend="nls-table", engine=engine_name)
            registry = Registry(enabled=True)
            with use(registry):
                config.build().run(trace, label=config.label())
            totals[engine_name] = sorted(
                (event["name"], event["value"])
                for event in registry.events()
                if event.get("event") == "counter"
                and event["name"].startswith("engine.")
            )
        assert totals["reference"] == totals["fast"]


class TestSupportedMatrix:
    def test_supported_configs_have_no_reason(self):
        for frontend, kwargs in SUPPORTED:
            config = ArchitectureConfig(frontend=frontend, **kwargs)
            assert unsupported_reason(config) is None, frontend

    @pytest.mark.parametrize(
        "override",
        [
            {"direction": "bimodal"},
            {"model_wrong_path": True},
        ],
    )
    def test_unsupported_configs_name_a_reason(self, override):
        config = ArchitectureConfig(**override)
        assert unsupported_reason(config)

    def test_fallback_builds_reference_engine(self):
        config = ArchitectureConfig(direction="bimodal", engine="fast")
        engine = config.build()
        assert isinstance(engine, FetchEngine)
        assert engine.engine_name == "reference"
        assert engine.engine_fallback == "unsupported-direction-predictor"

    def test_fast_engine_rejects_unsupported_config(self):
        with pytest.raises(ValueError):
            FastEngine(ArchitectureConfig(model_wrong_path=True))


class TestCapability:
    def test_fallback_reason_values_are_pinned(self):
        # the manifest's engine_fallback field is machine-readable:
        # these strings are a stable contract with downstream tooling
        assert (
            FallbackReason.DIRECTION_PREDICTOR.value
            == "unsupported-direction-predictor"
        )
        assert FallbackReason.WRONG_PATH.value == "wrong-path-modelling"
        assert {r.value for r in FallbackReason} == {
            "unsupported-direction-predictor",
            "wrong-path-modelling",
        }

    def test_engine_class_values_are_pinned(self):
        assert EngineClass.FAST_BATCHED.value == "fast-batched"
        assert EngineClass.FAST_SINGLE.value == "fast-single"
        assert EngineClass.REFERENCE.value == "reference"

    @pytest.mark.parametrize(
        "override,expected",
        [
            ({"frontend": "nls-table"}, EngineClass.FAST_BATCHED),
            ({"frontend": "btb"}, EngineClass.FAST_BATCHED),
            ({"frontend": "btb", "btb_assoc": 4}, EngineClass.FAST_SINGLE),
            ({"frontend": "coupled-btb"}, EngineClass.FAST_SINGLE),
            (
                {"frontend": "nls-cache", "nls_cache_policy": "lru"},
                EngineClass.FAST_SINGLE,
            ),
            ({"frontend": "nls-cache"}, EngineClass.FAST_BATCHED),
            ({"frontend": "johnson"}, EngineClass.FAST_BATCHED),
            ({"direction": "bimodal"}, EngineClass.REFERENCE),
            ({"model_wrong_path": True}, EngineClass.REFERENCE),
        ],
    )
    def test_engine_class_classification(self, override, expected):
        assert engine_class(ArchitectureConfig(**override)) is expected

    def test_fallback_reason_none_for_supported(self):
        for frontend, kwargs in SUPPORTED:
            config = ArchitectureConfig(frontend=frontend, **kwargs)
            assert fallback_reason(config) is None

    def test_fast_engine_exposes_engine_class(self):
        engine = FastEngine(ArchitectureConfig(frontend="nls-table"))
        assert engine.engine_class is EngineClass.FAST_BATCHED
        engine = FastEngine(ArchitectureConfig(frontend="coupled-btb"))
        assert engine.engine_class is EngineClass.FAST_SINGLE


class TestHarnessWiring:
    def test_config_validates_engine(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(engine="bogus")

    def test_describe_includes_non_default_engine(self):
        assert ArchitectureConfig(engine="fast").describe()["engine"] == "fast"
        assert "engine" not in ArchitectureConfig().describe()

    def test_manifest_stamps_engine(self):
        request = RunRequest(
            config=ArchitectureConfig(frontend="nls-table", engine="fast"),
            program="li",
            instructions=20_000,
        )
        report = run_request(request)
        assert report.manifest.extra["engine"] == "fast"
        assert report.manifest.extra["engine_class"] == "fast-batched"
        assert "engine_fallback" not in report.manifest.extra

    def test_manifest_stamps_fallback(self):
        request = RunRequest(
            config=ArchitectureConfig(direction="bimodal", engine="fast"),
            program="li",
            instructions=20_000,
        )
        report = run_request(request)
        assert report.manifest.extra["engine"] == "reference"
        assert (
            report.manifest.extra["engine_fallback"]
            == "unsupported-direction-predictor"
        )

    def test_manifest_stamps_reference_default(self):
        request = RunRequest(
            config=ArchitectureConfig(frontend="nls-table"),
            program="li",
            instructions=20_000,
        )
        report = run_request(request)
        assert report.manifest.extra["engine"] == "reference"

    def test_with_engine_rewrites_cells_and_aliases_reports(self):
        cells = tuple(
            RunRequest(
                config=ArchitectureConfig(frontend="nls-table"),
                program=program,
                instructions=20_000,
            )
            for program in ("li", "espresso")
        )

        def finish(reports):
            # renderers index by the ORIGINAL reference-engine cells
            return ExperimentResult(
                name="t",
                title="t",
                text="",
                data={"breaks": [reports[cell].n_breaks for cell in cells]},
            )

        (plan,) = with_engine(
            [ExperimentPlan(name="t", cells=cells, finish=finish)], "fast"
        )
        assert all(cell.config.engine == "fast" for cell in plan.cells)
        result = plan.run()
        assert all(n > 0 for n in result.data["breaks"])

    def test_with_engine_reference_is_identity(self):
        plan = ExperimentPlan(name="t", cells=(), finish=lambda reports: None)
        assert with_engine([plan], "reference") == [plan]


def _sample_config(rng: random.Random) -> ArchitectureConfig:
    """Draw one random configuration from the fast engine's closed matrix."""
    frontend = rng.choice(
        [
            "nls-table",
            "nls-cache",
            "btb",
            "coupled-btb",
            "steely-sager",
            "johnson",
            "oracle",
            "fall-through",
        ]
    )
    line_bytes = rng.choice([16, 32, 64])
    kwargs = dict(
        frontend=frontend,
        cache_kb=rng.choice([1, 2, 4, 16]),
        # Steely-Sager line successors require a direct-mapped cache
        cache_assoc=1 if frontend == "steely-sager" else rng.choice([1, 2, 4]),
        line_bytes=line_bytes,
        cache_replacement=rng.choice(["lru", "fifo", "random"]),
        pht_entries=rng.choice([1024, 4096]),
        ras_entries=rng.choice([8, 32]),
        flush_interval=rng.choice([None, 7_777]),
        attribution=rng.random() < 0.5,
    )
    if frontend in ("nls-table", "steely-sager", "btb", "coupled-btb"):
        kwargs["entries"] = rng.choice([64, 256, 1024])
    if frontend in ("btb", "coupled-btb"):
        kwargs["btb_assoc"] = rng.choice([1, 2, 4])
    if frontend == "btb":
        kwargs["btb_allocate"] = rng.choice(["taken-only", "all"])
    if frontend in ("nls-cache", "johnson"):
        # per-line predictor counts must divide the instructions per line
        per_line = line_bytes // 4
        kwargs["predictors_per_line"] = rng.choice(
            [pl for pl in (1, 2, 4, 8) if pl <= per_line]
        )
    if frontend == "nls-cache":
        kwargs["nls_cache_policy"] = rng.choice(["partition", "lru"])
    return ArchitectureConfig(**kwargs)


class TestDifferentialFuzz:
    """Seeded fuzz across the closed matrix (satellite of the batched
    sweep work): random configurations must export byte-identical JSON
    from both engines, including attribution profiles and telemetry
    counter totals."""

    CASES = 12

    def test_random_configs_are_byte_identical(self):
        rng = random.Random(20260808)
        traces = {
            program: generate_trace(program, instructions=20_000)
            for program in ("li", "doduc")
        }
        for case in range(self.CASES):
            config = _sample_config(rng)
            program = rng.choice(sorted(traces))
            trace = traces[program]
            warmup = rng.choice([0.0, 0.3])
            exports = {}
            telemetry = {}
            for engine_name in ("reference", "fast"):
                cell = replace(config, engine=engine_name)
                registry = Registry(enabled=True)
                with use(registry):
                    report = cell.build().run(
                        trace, label=config.label(), warmup_fraction=warmup
                    )
                exports[engine_name] = as_json(report)
                telemetry[engine_name] = sorted(
                    (event["name"], event["value"])
                    for event in registry.events()
                    if event.get("event") == "counter"
                    and event["name"].startswith("engine.")
                )
                if config.attribution:
                    exports[engine_name] += json.dumps(
                        _jsonable(report.attribution), sort_keys=True
                    )
            detail = f"case {case}: {config.describe()} on {program}"
            assert exports["reference"] == exports["fast"], detail
            assert telemetry["reference"] == telemetry["fast"], detail


class TestBatchedContext:
    """The shared-context batched path must be invisible in the output:
    attaching a prepared :class:`TraceReplayContext` changes throughput,
    never reports."""

    BATCH = [
        ArchitectureConfig(frontend="nls-table", entries=256),
        ArchitectureConfig(frontend="nls-table", entries=1024),
        ArchitectureConfig(frontend="steely-sager", entries=512),
        ArchitectureConfig(frontend="btb", entries=128),
        ArchitectureConfig(frontend="btb", entries=512, btb_allocate="all"),
        ArchitectureConfig(frontend="nls-cache", predictors_per_line=4),
        ArchitectureConfig(frontend="johnson", predictors_per_line=2),
        ArchitectureConfig(frontend="nls-table", pht_entries=1024),
        ArchitectureConfig(frontend="oracle"),
    ]

    def test_shared_context_matches_solo_runs(self):
        trace = generate_trace("li", instructions=20_000)
        solo = {}
        for index, config in enumerate(self.BATCH):
            engine = replace(config, engine="fast").build()
            solo[index] = as_json(
                engine.run(trace, label=config.label(), warmup_fraction=0.2)
            )
        context = TraceReplayContext(trace)
        context.prepare(self.BATCH)
        for index, config in enumerate(self.BATCH):
            engine = replace(config, engine="fast").build()
            engine.attach_context(context)
            batched = as_json(
                engine.run(trace, label=config.label(), warmup_fraction=0.2)
            )
            assert batched == solo[index], config.label()
        # every stacked sort prepared for the batch was consumed
        assert not context._orders

    def test_mismatched_context_is_ignored(self):
        config = ArchitectureConfig(frontend="nls-table")
        trace = generate_trace("li", instructions=20_000)
        other = generate_trace("doduc", instructions=20_000)
        engine = replace(config, engine="fast").build()
        engine.attach_context(TraceReplayContext(other))
        report = engine.run(trace, label=config.label())
        baseline = replace(config, engine="fast").build().run(
            trace, label=config.label()
        )
        assert as_json(report) == as_json(baseline)

    def test_run_plan_serial_matches_unbatched_requests(self):
        # the serial backend groups by (trace, signature) and shares a
        # context; reports must equal per-cell run_request results
        cells = tuple(
            RunRequest(
                config=replace(config, engine="fast"),
                program="li",
                instructions=20_000,
            )
            for config in self.BATCH[:4]
        )
        plan = RunPlan(cells)
        results = plan.execute(backend="serial")

        def stable(report) -> str:
            payload = _jsonable(report)
            # manifest and run metadata carry wall time / pid, which
            # legitimately vary per run
            payload.pop("manifest", None)
            payload.pop("meta", None)
            return json.dumps(payload, sort_keys=True)

        for cell in cells:
            direct = run_request(cell)
            assert stable(results[cell]) == stable(direct)
            assert results[cell].manifest.extra["engine_class"] in (
                "fast-batched",
                "fast-single",
            )


class TestPackedTrace:
    def test_packed_is_memoised_and_invalidated(self):
        trace = generate_trace("li", instructions=10_000)
        packed = trace.packed()
        assert trace.packed() is packed
        assert packed["starts"].tolist() == trace.starts

    def test_save_load_roundtrip_preserves_packed(self, tmp_path):
        trace = generate_trace("li", instructions=10_000)
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = type(trace).load(path)
        assert loaded.starts == trace.starts
        assert loaded.kinds == trace.kinds
        assert loaded._packed is not None
        assert loaded.packed()["targets"].tolist() == trace.targets

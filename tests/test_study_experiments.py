"""Tests for the secondary study experiments: misfetch causes, BTB
allocation policy, RAS depth, line size."""

import pytest

from repro.core.nls_entry import (
    MISMATCH_CAUSES,
    NLSEntryType,
    NLSPrediction,
    classify_nls_mismatch,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.harness.experiments import (
    btb_allocation,
    line_size,
    misfetch_causes,
    ras_depth,
)
from repro.isa.branches import BranchKind
from repro.predictors.btb import BranchTargetBuffer

SMALL = 60_000


class TestClassifyMismatch:
    def setup_method(self):
        self.cache = InstructionCache(CacheGeometry(8 * 1024, 32, 2))
        self.geometry = self.cache.geometry

    def prediction_for(self, target, way):
        return NLSPrediction(
            NLSEntryType.OTHER, self.geometry.line_field(target), way
        )

    def test_match_returns_none(self):
        target = 0x2000
        way = self.cache.access(target).way
        assert classify_nls_mismatch(
            self.prediction_for(target, way), target, self.cache
        ) is None

    def test_invalid(self):
        from repro.core.nls_entry import INVALID_PREDICTION

        assert (
            classify_nls_mismatch(INVALID_PREDICTION, 0x2000, self.cache)
            == "invalid"
        )

    def test_line_field_alias(self):
        target = 0x2000
        way = self.cache.access(target).way
        wrong = self.prediction_for(target + 4, way)
        assert classify_nls_mismatch(wrong, target, self.cache) == "line-field"

    def test_displaced(self):
        target = 0x2000
        way = self.cache.access(target).way
        prediction = self.prediction_for(target, way)
        self.cache.flush()
        assert classify_nls_mismatch(prediction, target, self.cache) == "displaced"

    def test_wrong_way(self):
        target = 0x2000
        way = self.cache.access(target).way
        assert (
            classify_nls_mismatch(
                self.prediction_for(target, way ^ 1), target, self.cache
            )
            == "wrong-way"
        )

    def test_all_causes_enumerated(self):
        assert set(MISMATCH_CAUSES) == {
            "invalid",
            "line-field",
            "displaced",
            "wrong-way",
        }


class TestMisfetchCausesExperiment:
    def test_displaced_share_falls_with_cache_size(self):
        result = misfetch_causes(
            programs=("gcc",), instructions=SMALL, cache_sizes=(8, 32)
        )
        small = result.data["8K"]
        large = result.data["32K"]
        assert large["displaced"] < small["displaced"]

    def test_alias_bucket_roughly_cache_independent(self):
        result = misfetch_causes(
            programs=("gcc",), instructions=SMALL, cache_sizes=(8, 32)
        )
        small = result.data["8K"]["line-field"]
        large = result.data["32K"]["line-field"]
        assert small > 0
        assert abs(small - large) < 0.5 * small


class TestBTBAllocation:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(128, 1, allocate="lru")

    def test_allocate_all_stores_not_taken_branches(self):
        btb = BranchTargetBuffer(128, 1, allocate="all")
        btb.record_not_taken(0x1000, BranchKind.CONDITIONAL, 0x2000)
        entry = btb.probe(0x1000)
        assert entry is not None and entry.target == 0x2000

    def test_taken_only_ignores_not_taken(self):
        btb = BranchTargetBuffer(128, 1, allocate="taken-only")
        btb.record_not_taken(0x1000, BranchKind.CONDITIONAL, 0x2000)
        assert btb.probe(0x1000) is None

    def test_taken_only_wins_experiment(self):
        result = btb_allocation(programs=("gcc",), instructions=SMALL)
        assert (
            result.data["128 BTB, allocate taken-only"]
            < result.data["128 BTB, allocate all"]
        )


class TestRASDepth:
    def test_deeper_stack_never_worse(self):
        result = ras_depth(
            programs=("li",), instructions=SMALL, depths=(1, 32)
        )
        assert result.data[32] <= result.data[1]

    def test_shallow_stack_mispredicts_on_call_heavy_program(self):
        result = ras_depth(programs=("li",), instructions=SMALL, depths=(1,))
        assert result.data[1] > 0.0


class TestLineSize:
    def test_entry_bits_shrink_with_longer_lines(self):
        result = line_size(
            programs=("li",), instructions=SMALL, line_sizes=(16, 64)
        )
        # fewer sets but more instruction-offset bits: net -0 per x4?
        # set bits fall by 2, offset bits rise by 2 -> equal line field;
        # the entry width is therefore constant across line sizes at a
        # fixed cache size
        assert (
            result.data[16]["entry_bits"] == result.data[64]["entry_bits"]
        )

    def test_runs_and_reports_bep(self):
        result = line_size(programs=("li",), instructions=SMALL, line_sizes=(32,))
        assert result.data[32]["bep"] > 0

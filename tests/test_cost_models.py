"""Tests for the RBE area model (Figure 3) and the access-time model
(Figure 6) — including the paper's cost-equivalence claims."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cost.rbe import RBEModel
from repro.cost.timing import AccessTimeModel
from repro.isa.geometry import AddressSpace


def geometry(kb, assoc=1):
    return CacheGeometry(kb * 1024, 32, assoc)


class TestRBEFieldWidths:
    def test_nls_entry_bits_direct_mapped(self):
        # 2 type + (set index + instruction offset); no way bits
        assert RBEModel.nls_entry_bits(geometry(16)) == 2 + 9 + 3

    def test_nls_entry_bits_four_way(self):
        g = geometry(16, 4)
        assert RBEModel.nls_entry_bits(g) == 2 + 7 + 3 + 2

    def test_btb_data_bits(self):
        # 30-bit target + 2-bit type in a 32-bit space (S7)
        assert RBEModel.btb_entry_data_bits() == 32
        assert RBEModel.btb_entry_data_bits(AddressSpace(64)) == 64

    def test_btb_tag_bits(self):
        assert RBEModel.btb_tag_bits(128, 1) == 30 - 7
        assert RBEModel.btb_tag_bits(128, 4) == 30 - 5

    def test_lru_bits(self):
        assert RBEModel.lru_bits_per_set(1) == 0
        assert RBEModel.lru_bits_per_set(2) == 1
        assert RBEModel.lru_bits_per_set(4) == 5


class TestPaperCostEquivalences:
    """Figure 3 / §6.1: the cost pairings the paper's comparisons use."""

    def setup_method(self):
        self.model = RBEModel()

    def test_nls_cache_matches_table_at_each_size(self):
        # NLS-cache == 512-table @8K, 1024-table @16K, 2048-table @32K
        for kb, entries in ((8, 512), (16, 1024), (32, 2048)):
            cache_cost = self.model.nls_cache_cost(geometry(kb)).rbe
            table_cost = self.model.nls_table_cost(entries, geometry(kb)).rbe
            assert cache_cost == pytest.approx(table_cost, rel=0.01)

    def test_1024_table_close_to_128_btb(self):
        table = self.model.nls_table_cost(1024, geometry(16)).rbe
        btb = self.model.btb_cost(128, 1).rbe
        assert 0.75 < table / btb < 1.25

    def test_256_btb_about_twice_1024_table(self):
        table = self.model.nls_table_cost(1024, geometry(16)).rbe
        btb = self.model.btb_cost(256, 1).rbe
        assert 1.6 < btb / table < 2.4

    def test_nls_table_grows_logarithmically(self):
        costs = [
            self.model.nls_table_cost(1024, geometry(kb)).rbe
            for kb in (8, 16, 32, 64)
        ]
        deltas = [b - a for a, b in zip(costs, costs[1:])]
        # one extra bit per entry per doubling: constant absolute delta
        assert max(deltas) == pytest.approx(min(deltas), rel=0.01)

    def test_nls_cache_grows_linearly(self):
        costs = [
            self.model.nls_cache_cost(geometry(kb)).rbe for kb in (8, 16, 32, 64)
        ]
        ratios = [b / a for a, b in zip(costs, costs[1:])]
        for ratio in ratios:
            assert ratio > 1.9  # roughly doubles per cache doubling

    def test_nls_cache_impractical_for_large_caches(self):
        # "the NLS-cache is practical for only small caches" (S6.1)
        big_cache = self.model.nls_cache_cost(geometry(64)).rbe
        biggest_btb = self.model.btb_cost(256, 4).rbe
        assert big_cache > biggest_btb

    def test_btb_cost_independent_of_cache(self):
        # btb_cost has no cache parameter at all; assert the address
        # space dependence instead (S7)
        small = self.model.btb_cost(128, 1, AddressSpace(32)).rbe
        large = self.model.btb_cost(128, 1, AddressSpace(64)).rbe
        assert large > small

    def test_nls_cost_independent_of_address_space(self):
        # the NLS entry stores no tag and no full target (S7): its cost
        # only depends on the cache geometry
        cost = self.model.nls_table_cost(1024, geometry(16)).rbe
        assert cost == self.model.nls_table_cost(1024, geometry(16)).rbe

    def test_btb_associativity_adds_cost(self):
        costs = [self.model.btb_cost(128, assoc).rbe for assoc in (1, 2, 4)]
        assert costs[0] < costs[1] < costs[2]

    def test_shared_structures_costed(self):
        assert self.model.pht_cost().storage_bits == 4096 * 2
        assert self.model.return_stack_cost().storage_bits == 32 * 30


class TestAccessTimeModel:
    def setup_method(self):
        self.model = AccessTimeModel()

    def test_paper_range(self):
        # Figure 6 shows a handful of nanoseconds
        for entries in (128, 256):
            for assoc in (1, 2, 4):
                assert 1.0 < self.model.access_time_ns(entries, assoc) < 10.0

    def test_four_way_penalty_is_30_to_40_percent(self):
        # the paper's headline timing claim (S6.3)
        for entries in (128, 256):
            ratio = self.model.associativity_penalty(entries, 4)
            assert 1.25 <= ratio <= 1.45

    def test_two_way_penalty_between_direct_and_four_way(self):
        for entries in (128, 256):
            two = self.model.associativity_penalty(entries, 2)
            four = self.model.associativity_penalty(entries, 4)
            assert 1.0 < two < four

    def test_bigger_structure_is_slower(self):
        assert self.model.access_time_ns(256, 1) > self.model.access_time_ns(128, 1)

    def test_direct_mapped_penalty_is_unity(self):
        assert self.model.associativity_penalty(128, 1) == pytest.approx(1.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            self.model.access_time_ns(100, 1)
        with pytest.raises(ValueError):
            self.model.access_time_ns(128, 256)

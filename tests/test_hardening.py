"""Service hardening: durable registry, admission, cancel, recovery.

The PR 9 acceptance surface, exercised in-process for speed (the CI
``service-hardening`` job additionally SIGKILLs real ``serve``
processes — ``tests/hardening_smoke.py``):

* the durable :class:`~repro.service.registry.JobRegistry` — job rows,
  idempotent event persistence, cancel flags, leases and atomic
  orphan claims on one shared SQLite file;
* the bounded in-memory event log spilling to the registry, with
  ``events_since`` seamless across the memory/disk boundary;
* the admission layer — keyring auth, token buckets on an injected
  clock, bounded-queue shedding and in-flight quotas, all answering
  ``429`` with an honest ``Retry-After``;
* cooperative cancellation — between-cell stop in both run-plan
  backends, terminal ``cancelled`` with the lease released and the
  partial results retained in the store;
* crash recovery — a replica that dies (here: a scheduler that simply
  never runs) forfeits its lease and a peer claims, resumes and
  finishes the job with every store-resident cell served rather than
  recomputed, and one gapless event sequence across the takeover;
* the hardened HTTP surface — 401 without a key, 429 + Retry-After
  under quota, ``/readyz``, ``POST .../cancel``, and JSON bodies on
  malformed-request error paths.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.harness.config import ArchitectureConfig
from repro.harness.runner import ExecutionPolicy, RunPlan, RunRequest
from repro.service.admission import (
    AdmissionController,
    AdmissionError,
    ClientQuota,
    Keyring,
    TokenBucket,
)
from repro.service.jobs import JobEventLog
from repro.service.registry import JobRegistry
from repro.service.scheduler import JobScheduler
from repro.service.store import ResultStore

#: trace length for hardening tests — tiny cells, the point is plumbing
TINY = 2_000


def _request(program: str = "li", entries: int = 32) -> RunRequest:
    return RunRequest(
        config=ArchitectureConfig(frontend="btb", entries=entries, cache_kb=8),
        program=program,
        instructions=TINY,
    )


def _cells_payload(requests, **extra):
    from repro.service.protocol import request_to_dict

    payload = {"cells": [request_to_dict(request) for request in requests]}
    payload.update(extra)
    return payload


def _wait(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------------
# durable job registry
# ---------------------------------------------------------------------------


class TestJobRegistry:
    def test_create_get_round_trip(self, tmp_path):
        registry = JobRegistry(str(tmp_path / "store.sqlite"))
        registry.create(
            "job-1", {"cells": []}, "cells", "demo", 4,
            client="alice", owner="rep-a", lease_s=5.0,
        )
        row = registry.get("job-1")
        assert row["state"] == "queued" and row["owner"] == "rep-a"
        assert row["cells"] == 4 and row["client"] == "alice"
        assert json.loads(row["spec"]) == {"cells": []}
        assert row["cancel_requested"] is False
        assert registry.get("job-nope") is None

    def test_state_transitions_release_terminal_leases(self, tmp_path):
        registry = JobRegistry(str(tmp_path / "store.sqlite"))
        registry.create("job-1", {}, "cells", "demo", 1, owner="rep-a")
        registry.set_state("job-1", "running")
        row = registry.get("job-1")
        assert row["state"] == "running" and row["started_s"] is not None
        assert row["owner"] == "rep-a"
        registry.set_state("job-1", "completed")
        row = registry.get("job-1")
        assert row["state"] == "completed" and row["finished_s"] is not None
        assert row["owner"] is None and row["lease_expires_s"] is None

    def test_cancel_flag_only_for_live_jobs(self, tmp_path):
        registry = JobRegistry(str(tmp_path / "store.sqlite"))
        registry.create("job-1", {}, "cells", "demo", 1)
        assert registry.request_cancel("job-1") is True
        assert registry.cancel_requested("job-1") is True
        registry.set_state("job-1", "cancelled")
        assert registry.request_cancel("job-1") is False
        assert registry.request_cancel("job-missing") is False

    def test_event_persistence_is_idempotent_and_ordered(self, tmp_path):
        registry = JobRegistry(str(tmp_path / "store.sqlite"))
        registry.create("job-1", {}, "cells", "demo", 1)
        for seq in range(5):
            registry.append_event("job-1", {"seq": seq, "event": f"e{seq}"})
        # replaying the same seq (a crashed writer's retry) is a no-op
        registry.append_event("job-1", {"seq": 2, "event": "duplicate"})
        events = registry.events("job-1")
        assert [event["seq"] for event in events] == [0, 1, 2, 3, 4]
        assert events[2]["event"] == "e2"
        assert registry.event_count("job-1") == 5
        assert registry.get("job-1")["events"] == 5
        assert [e["seq"] for e in registry.events("job-1", 1, 3)] == [1, 2]

    def test_expired_lease_is_claimed_exactly_once(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        registry = JobRegistry(path)
        registry.create(
            "job-1", {}, "cells", "demo", 1, owner="rep-dead", lease_s=0.05
        )
        registry.set_state("job-1", "running")
        time.sleep(0.1)
        peer = JobRegistry(path)
        claimed = peer.claim_orphans("rep-b", lease_s=5.0)
        assert [(row["job_id"], takeover) for row, takeover in claimed] == [
            ("job-1", True)
        ]
        # the same sweep again finds nothing — rep-b now holds a live lease
        assert peer.claim_orphans("rep-c", lease_s=5.0) == []
        assert registry.get("job-1")["owner"] == "rep-b"

    def test_heartbeat_extends_and_release_requeues(self, tmp_path):
        registry = JobRegistry(str(tmp_path / "store.sqlite"))
        registry.create("job-1", {}, "cells", "demo", 1, owner="rep-a", lease_s=1.0)
        registry.set_state("job-1", "running")
        before = registry.get("job-1")["lease_expires_s"]
        assert registry.heartbeat("rep-a", lease_s=60.0) == 1
        assert registry.get("job-1")["lease_expires_s"] > before
        assert registry.release_owner("rep-a") == 1
        row = registry.get("job-1")
        assert row["state"] == "queued" and row["owner"] is None


class TestEventLogSpill:
    def test_spill_and_seamless_reads_across_the_boundary(self, tmp_path):
        registry = JobRegistry(str(tmp_path / "store.sqlite"))
        registry.create("job-1", {}, "cells", "demo", 1)
        log = JobEventLog(
            backing=registry.log_backing("job-1"), max_memory=4
        )
        for index in range(10):
            log.append("tick", index=index)
        assert len(log) == 10
        # memory holds only the newest window; the backing has it all
        assert len(log._events) == 4
        assert registry.event_count("job-1") == 10
        full = log.events_since(0)
        assert [event["seq"] for event in full] == list(range(10))
        assert [event["index"] for event in full] == list(range(10))
        # a read straddling the boundary stitches disk + memory
        straddle = log.events_since(5)
        assert [event["seq"] for event in straddle] == [5, 6, 7, 8, 9]
        # a purely in-memory read never touches the backing
        assert [e["seq"] for e in log.events_since(8)] == [8, 9]

    def test_base_seeds_recovered_logs_past_persisted_events(self, tmp_path):
        registry = JobRegistry(str(tmp_path / "store.sqlite"))
        registry.create("job-1", {}, "cells", "demo", 1)
        first = JobEventLog(backing=registry.log_backing("job-1"))
        first.append("one")
        first.append("two")
        # a restarted process resumes appending where the log left off
        resumed = JobEventLog(
            backing=registry.log_backing("job-1"), base=2
        )
        resumed.append("three")
        assert [e["event"] for e in resumed.events_since(0)] == [
            "one",
            "two",
            "three",
        ]
        assert [e["seq"] for e in resumed.events_since(0)] == [0, 1, 2]


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestAdmission:
    def test_token_bucket_refills_on_the_injected_clock(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_take() == (True, 0.0)
        assert bucket.try_take() == (True, 0.0)
        ok, retry_after = bucket.try_take()
        assert ok is False and retry_after == pytest.approx(1.0)
        clock.now += 0.5
        ok, retry_after = bucket.try_take()
        assert ok is False and retry_after == pytest.approx(0.5)
        clock.now += 0.5
        assert bucket.try_take() == (True, 0.0)

    def test_keyring_auth_and_overrides(self, tmp_path):
        keyfile = tmp_path / "keys.json"
        keyfile.write_text(
            json.dumps(
                {
                    "schema": "repro-keys/v1",
                    "clients": [
                        {"client": "alice", "key": "s3cret", "max_jobs": 1},
                        {"client": "bob", "key": "hunter2"},
                    ],
                }
            )
        )
        controller = AdmissionController(
            keyring=Keyring.load(str(keyfile)),
            default_quota=ClientQuota(max_jobs=5),
        )
        assert controller.authenticate("Bearer s3cret") == "alice"
        assert controller.authenticate("bearer hunter2") == "bob"
        # alice's keyfile override narrows the default quota
        assert controller.quota_for("alice").max_jobs == 1
        assert controller.quota_for("bob").max_jobs == 5
        for bad in (None, "Bearer wrong", "Basic s3cret"):
            with pytest.raises(AdmissionError) as err:
                controller.authenticate(bad)
            assert err.value.status == 401

    def test_open_service_stays_anonymous(self):
        controller = AdmissionController()
        assert controller.authenticate(None) == "anonymous"

    def test_malformed_keyfiles_are_rejected(self, tmp_path):
        bad_schema = tmp_path / "bad.json"
        bad_schema.write_text(json.dumps({"schema": "nope", "clients": []}))
        with pytest.raises(ValueError, match="schema"):
            Keyring.load(str(bad_schema))
        no_key = tmp_path / "nokey.json"
        no_key.write_text(
            json.dumps(
                {"schema": "repro-keys/v1", "clients": [{"client": "x"}]}
            )
        )
        with pytest.raises(ValueError, match="'client' and 'key'"):
            Keyring.load(str(no_key))

    def test_queue_bound_sheds_with_retry_after(self):
        controller = AdmissionController(max_queue=2)
        controller.admit("anonymous", cells=1, queue_depth=1)
        with pytest.raises(AdmissionError) as err:
            controller.admit("anonymous", cells=1, queue_depth=2)
        assert err.value.status == 429
        assert err.value.retry_after is not None

    def test_inflight_quotas_account_and_release(self):
        controller = AdmissionController(
            default_quota=ClientQuota(max_jobs=1, max_cells=10)
        )
        controller.admit("alice", cells=6, queue_depth=0)
        with pytest.raises(AdmissionError, match="jobs in flight"):
            controller.admit("alice", cells=1, queue_depth=0)
        controller.job_finished("alice", cells=6)
        controller.admit("alice", cells=6, queue_depth=0)
        controller.job_finished("alice", cells=6)
        # the cell cap binds independently of the job cap
        wide = AdmissionController(default_quota=ClientQuota(max_cells=10))
        wide.admit("bob", cells=8, queue_depth=0)
        with pytest.raises(AdmissionError, match="cells in flight"):
            wide.admit("bob", cells=8, queue_depth=0)

    def test_rate_limit_sheds_and_counts(self):
        clock = _FakeClock()
        controller = AdmissionController(
            default_quota=ClientQuota(rate=1.0, burst=1), clock=clock
        )
        controller.check_rate("alice")
        with pytest.raises(AdmissionError) as err:
            controller.check_rate("alice")
        assert err.value.status == 429 and err.value.retry_after >= 1


# ---------------------------------------------------------------------------
# cooperative cancellation (runner + scheduler)
# ---------------------------------------------------------------------------


class TestRunnerCancel:
    def test_cancel_before_start_runs_nothing(self):
        plan = RunPlan([_request(entries=e) for e in (16, 32)])
        results = plan.execute(policy=ExecutionPolicy(), cancel=lambda: True)
        assert results == {} and plan.failures == {}

    def test_cancel_mid_plan_keeps_finished_cells(self):
        requests = [
            _request(program=program, entries=16)
            for program in ("li", "espresso", "gcc", "doduc")
        ]
        done = []

        def cancel_after_two() -> bool:
            return len(done) >= 2

        plan = RunPlan(requests)
        results = plan.execute(
            policy=ExecutionPolicy(),
            observer=lambda event, request, payload: done.append(request),
            cancel=cancel_after_two,
        )
        assert len(results) == 2 and plan.failures == {}

    def test_strict_serial_cancel_returns_partial(self):
        requests = [_request(entries=e) for e in (16, 32, 64)]
        done = []
        plan = RunPlan(requests)
        results = plan.execute(
            observer=lambda event, request, payload: done.append(request),
            cancel=lambda: len(done) >= 1,
        )
        assert len(results) == 1


class TestSchedulerCancel:
    def test_cancel_lands_terminal_with_partials_retained(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.sqlite"))
        scheduler = JobScheduler(store, concurrency=1)
        scheduler.start()
        try:
            requests = [
                _request(program=program)
                for program in ("li", "espresso", "gcc", "doduc", "cfront")
            ]
            job = scheduler.submit(_cells_payload(requests))
            # wait for at least one finished cell, then pull the plug
            assert _wait(
                lambda: any(
                    event["event"] == "cell"
                    for event in job.log.events_since(0)
                )
            )
            assert scheduler.request_cancel(job.id) is True
            assert _wait(lambda: job.done)
            assert job.state.value == "cancelled"
            events = [event["event"] for event in job.log.events_since(0)]
            assert events[-1] == "job-cancelled"
            finished = events.count("cell")
            assert 1 <= finished < len(requests)
            # partial results are retained in the store...
            assert store.stats()["entries"] == finished
            # ...and the registry row is terminal with the lease gone
            row = scheduler.registry.get(job.id)
            assert row["state"] == "cancelled" and row["owner"] is None
            # the result document marks unfinished cells
            sources = {cell["source"] for cell in job.result["cells"]}
            assert "cancelled" in sources
        finally:
            scheduler.stop()
            store.close()

    def test_cancel_of_queued_job_never_simulates(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.sqlite"))
        scheduler = JobScheduler(store, concurrency=1)
        # not started: the job stays queued until we cancel it
        job = scheduler.submit(_cells_payload([_request()]))
        assert scheduler.request_cancel(job.id) is True
        scheduler.start()
        try:
            assert _wait(lambda: job.done)
            assert job.state.value == "cancelled"
            assert store.stats()["entries"] == 0
        finally:
            scheduler.stop()
            store.close()

    def test_terminal_jobs_refuse_cancellation(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.sqlite"))
        scheduler = JobScheduler(store, concurrency=1)
        scheduler.start()
        try:
            job = scheduler.submit(_cells_payload([_request()]))
            assert _wait(lambda: job.done)
            assert scheduler.request_cancel(job.id) is False
        finally:
            scheduler.stop()
            store.close()


# ---------------------------------------------------------------------------
# crash recovery via leases (in-process)
# ---------------------------------------------------------------------------


class TestLeaseRecovery:
    def test_peer_claims_and_finishes_without_recompute(self, tmp_path):
        """A replica dies holding a lease; a peer claims the job and
        finishes it with every store-resident cell served, not
        recomputed — the multi-replica acceptance invariant."""
        from repro.telemetry.core import Registry, set_registry

        previous = set_registry(Registry(enabled=True))
        path = str(tmp_path / "store.sqlite")
        requests = [_request(entries=e) for e in (16, 32, 64)]

        # seed the store with two of the three cells (the "work the
        # dead replica finished before crashing")
        seed_store = ResultStore(path)
        warm = JobScheduler(seed_store, concurrency=1, owner="rep-warm")
        warm.start()
        seeded = warm.submit(_cells_payload(requests[:2]))
        assert _wait(lambda: seeded.done)
        warm.stop()

        # the "dead" replica: accepts the job, never runs it, and its
        # lease is short enough to lapse immediately
        dead = JobScheduler(
            seed_store, concurrency=1, owner="rep-dead", lease_s=0.05
        )
        victim = dead.submit(_cells_payload(requests), client="alice")
        assert dead.registry.get(victim.id)["owner"] == "rep-dead"
        seed_store.close()
        time.sleep(0.15)  # lease expires

        # the survivor shares the database file and claims on start()
        store_b = ResultStore(path)
        survivor = JobScheduler(
            store_b, concurrency=1, owner="rep-b", lease_s=5.0
        )
        survivor.start()
        try:
            recovered = survivor.get(victim.id)
            assert recovered is not None and recovered.id == victim.id
            assert _wait(lambda: recovered.done)
            assert recovered.state.value == "completed"
            counters = recovered.manifest["counters"]
            # zero lost, zero recomputed: the two seeded cells are
            # store hits, only the never-run third cell computes
            assert counters["store_hits"] == 2
            assert counters["cells_computed"] == 1
            row = survivor.registry.get(victim.id)
            assert row["state"] == "completed" and row["owner"] is None
            # one gapless exactly-once event sequence across both owners
            events = survivor.registry.events(victim.id)
            seqs = [event["seq"] for event in events]
            assert seqs == list(range(len(seqs)))
            kinds = [event["event"] for event in events]
            assert "job-recovered" in kinds
            assert kinds[-1] == "job-completed"
            from repro.telemetry.core import get_registry

            counters = get_registry().counters
            assert counters.get("service.jobs_recovered", 0) >= 1
            assert counters.get("service.lease_takeovers", 0) >= 1
        finally:
            survivor.stop()
            store_b.close()
            set_registry(previous)

    def test_graceful_drain_requeues_unfinished_jobs(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        store = ResultStore(path)
        scheduler = JobScheduler(store, concurrency=1, owner="rep-a")
        scheduler.start()
        try:
            requests = [
                _request(program=program)
                for program in ("li", "espresso", "gcc", "doduc", "cfront", "groff")
            ]
            job = scheduler.submit(_cells_payload(requests))
            assert _wait(
                lambda: any(
                    event["event"] == "cell"
                    for event in job.log.events_since(0)
                )
            )
            scheduler.shutdown(timeout=60.0)
            assert job.suspended or job.done
            row = scheduler.registry.get(job.id)
            # either it just finished, or it went back to the pool
            assert row["state"] in ("queued", "completed")
            assert row["owner"] is None
            if row["state"] == "queued":
                kinds = [
                    event["event"]
                    for event in scheduler.registry.events(job.id)
                ]
                assert kinds[-1] == "job-suspended"
        finally:
            store.close()


# ---------------------------------------------------------------------------
# hardened HTTP surface
# ---------------------------------------------------------------------------


def _http(url, method="GET", payload=None, token=None):
    """Status, parsed JSON body and headers — 4xx/5xx included."""
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode(),
        headers=headers,
        method=method,
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, json.loads(body) if body else None, dict(
            error.headers
        )


@pytest.fixture()
def gated_service(tmp_path):
    """A service with keys, quotas and a bounded queue."""
    from repro.service.api import ServiceServer

    keyring = Keyring(
        [
            {"client": "alice", "key": "alice-key"},
            {"client": "bob", "key": "bob-key", "max_jobs": 1},
        ]
    )
    admission = AdmissionController(
        keyring=keyring,
        default_quota=ClientQuota(max_jobs=4, max_cells=100),
        max_queue=50,
    )
    store = ResultStore(str(tmp_path / "store.sqlite"))
    scheduler = JobScheduler(store, concurrency=1, admission=admission)
    server = ServiceServer(scheduler)
    url = server.start_background()
    yield url, scheduler
    server.stop_background()
    store.close()


class TestHardenedAPI:
    def test_api_requires_keys_but_probes_stay_open(self, gated_service):
        url, _scheduler = gated_service
        status, body, _ = _http(f"{url}/api/v1/jobs")
        assert status == 401 and body["error"]
        status, body, _ = _http(f"{url}/api/v1/jobs", token="wrong")
        assert status == 401
        status, body, _ = _http(f"{url}/api/v1/jobs", token="alice-key")
        assert status == 200 and body["jobs"] == []
        # liveness/readiness/metrics scrape without credentials
        assert _http(f"{url}/healthz")[0] == 200
        status, body, _ = _http(f"{url}/readyz")
        assert status == 200 and body["ready"] is True
        with urllib.request.urlopen(f"{url}/metrics") as response:
            assert response.status == 200

    def test_submit_cancel_and_job_charge_lifecycle(self, gated_service):
        url, scheduler = gated_service
        requests = [
            _request(program=program)
            for program in ("li", "espresso", "gcc", "doduc", "cfront")
        ]
        status, submitted, _ = _http(
            f"{url}/api/v1/jobs",
            method="POST",
            payload=_cells_payload(requests),
            token="alice-key",
        )
        assert status == 202
        job_id = submitted["job_id"]
        status, body, _ = _http(
            f"{url}/api/v1/jobs/{job_id}/cancel",
            method="POST",
            token="alice-key",
        )
        assert status == 202 and body["cancel_requested"] is True
        job = scheduler.get(job_id)
        assert _wait(lambda: job.done)
        assert job.state.value == "cancelled"
        # a second cancel of the terminal job conflicts
        status, body, _ = _http(
            f"{url}/api/v1/jobs/{job_id}/cancel",
            method="POST",
            token="alice-key",
        )
        assert status == 409
        # the admission charge was returned
        assert scheduler.admission.inflight("alice") == (0, 0)

    def test_overload_sheds_with_retry_after_and_accepted_jobs_finish(
        self, gated_service
    ):
        """Bob (max one job in flight) floods: exactly the quota is
        accepted, the rest shed with 429 + Retry-After, and every
        accepted job still completes."""
        from repro.telemetry.core import Registry, set_registry

        previous = set_registry(Registry(enabled=True))
        url, scheduler = gated_service
        payload = _cells_payload(
            [
                _request(program=program)
                for program in ("li", "espresso", "gcc")
            ]
        )
        outcomes = []
        for _ in range(4):
            status, body, headers = _http(
                f"{url}/api/v1/jobs",
                method="POST",
                payload=payload,
                token="bob-key",
            )
            outcomes.append((status, body, headers))
        accepted = [o for o in outcomes if o[0] == 202]
        shed = [o for o in outcomes if o[0] == 429]
        assert len(accepted) == 1 and len(shed) == 3
        for _status, body, headers in shed:
            assert "Retry-After" in headers
            assert body["status"] == 429
        job = scheduler.get(accepted[0][1]["job_id"])
        assert _wait(lambda: job.done)
        assert job.state.value == "completed"
        assert scheduler.admission.inflight("bob") == (0, 0)
        from repro.telemetry.core import get_registry

        try:
            assert get_registry().counters.get("service.requests_shed", 0) >= 3
        finally:
            set_registry(previous)

    def test_non_resident_events_replay_from_the_registry(self, tmp_path):
        """A restarted replica serves a finished job's persisted event
        log over ``/events?from=N`` even though the job is no longer
        resident in memory."""
        from repro.service.api import ServiceServer

        path = str(tmp_path / "store.sqlite")
        store = ResultStore(path)
        first = JobScheduler(store, concurrency=1, owner="rep-one")
        first.start()
        job = first.submit(_cells_payload([_request(entries=e) for e in (16, 32)]))
        assert _wait(lambda: job.done)
        first.stop()
        store.close()

        # a fresh process on the same store: terminal jobs are not
        # recovered into memory, only their registry history remains
        store_two = ResultStore(path)
        second = JobScheduler(store_two, concurrency=1, owner="rep-two")
        server = ServiceServer(second)
        url = server.start_background()
        try:
            assert second.get(job.id) is None
            with urllib.request.urlopen(
                f"{url}/api/v1/jobs/{job.id}/events?from=0", timeout=30
            ) as response:
                events = [
                    json.loads(line) for line in response if line.strip()
                ]
            assert [event["seq"] for event in events] == list(
                range(len(events))
            )
            assert events[-1]["event"] == "job-completed"
            # resume mid-log: same records, exactly once
            with urllib.request.urlopen(
                f"{url}/api/v1/jobs/{job.id}/events?from=2", timeout=30
            ) as response:
                tail = [json.loads(line) for line in response if line.strip()]
            assert tail == events[2:]
        finally:
            server.stop_background()
            store_two.close()

    def test_unknown_job_cancel_is_404(self, gated_service):
        url, _scheduler = gated_service
        status, body, _ = _http(
            f"{url}/api/v1/jobs/job-nope/cancel",
            method="POST",
            token="alice-key",
        )
        assert status == 404

    def test_malformed_request_line_gets_json_400(self, gated_service):
        url, _scheduler = gated_service
        host, port = url[len("http://") :].split(":")
        with socket.create_connection((host, int(port)), timeout=5) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            response = b""
            while b"\r\n\r\n" not in response:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                response += chunk
            response += sock.recv(65536)
        head, _, body = response.partition(b"\r\n\r\n")
        assert b"400" in head.split(b"\r\n")[0]
        assert b"Content-Length:" in head
        assert json.loads(body)["status"] == 400

    def test_oversized_body_gets_json_413(self, gated_service):
        url, _scheduler = gated_service
        host, port = url[len("http://") :].split(":")
        with socket.create_connection((host, int(port)), timeout=5) as sock:
            sock.sendall(
                b"POST /api/v1/jobs HTTP/1.1\r\n"
                b"Content-Length: 99999999999\r\n\r\n"
            )
            response = b""
            while b"\r\n\r\n" not in response:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                response += chunk
            response += sock.recv(65536)
        head, _, body = response.partition(b"\r\n\r\n")
        assert b"413" in head.split(b"\r\n")[0]
        assert b"Content-Length:" in head
        assert json.loads(body)["status"] == 413

    def test_read_timeout_answers_408(self, tmp_path):
        from repro.service.api import ServiceServer

        store = ResultStore(str(tmp_path / "store.sqlite"))
        scheduler = JobScheduler(store, concurrency=1)
        server = ServiceServer(scheduler, read_timeout=0.2)
        url = server.start_background()
        try:
            host, port = url[len("http://") :].split(":")
            with socket.create_connection((host, int(port)), timeout=5) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\n")  # never finishes
                response = sock.recv(65536)
            assert b"408" in response.split(b"\r\n")[0]
        finally:
            server.stop_background()
            store.close()


class TestExpositionGauges:
    def test_extra_gauges_render(self):
        from repro.telemetry.core import Registry
        from repro.telemetry.exposition import render_prometheus

        text = render_prometheus(
            Registry(enabled=True),
            extra_gauges={"service_queue_depth": 3},
        )
        assert "repro_service_queue_depth 3" in text
        # the hardening counters appear zero-filled from the start
        for name in (
            "repro_service_requests_shed_total",
            "repro_service_jobs_cancelled_total",
            "repro_service_jobs_recovered_total",
            "repro_service_lease_takeovers_total",
        ):
            assert f"{name} 0" in text


class TestJobsCLI:
    def test_jobs_list_and_cancel_against_the_registry(self, tmp_path, capsys):
        from repro.harness.cli import main

        path = str(tmp_path / "store.sqlite")
        store = ResultStore(path)
        scheduler = JobScheduler(store, concurrency=1, owner="rep-cli")
        job = scheduler.submit(_cells_payload([_request()]), client="alice")
        store.close()
        scheduler.registry.close()

        assert main(["jobs", "list", "--store", path]) == 0
        out = capsys.readouterr().out
        assert job.id in out and "queued" in out and "alice" in out

        assert main(["jobs", "cancel", job.id, "--store", path]) == 0
        out = capsys.readouterr().out
        assert "cancel requested" in out

        registry = JobRegistry(path)
        assert registry.cancel_requested(job.id) is True
        registry.set_state(job.id, "cancelled")
        registry.close()
        assert main(["jobs", "cancel", job.id, "--store", path]) == 1
        assert main(["jobs", "cancel", "job-missing", "--store", path]) == 1

    def test_jobs_argument_validation(self, tmp_path):
        from repro.harness.cli import main

        with pytest.raises(SystemExit):
            main(["jobs", "cancel"])  # missing job id
        with pytest.raises(SystemExit):
            main(["jobs", "frobnicate"])
        with pytest.raises(SystemExit):
            main(["fig5", "stats"])  # sub-actions stay store/jobs-only

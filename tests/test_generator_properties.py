"""Property-based tests of the workload generator and interpreter:
arbitrary (valid) profiles must yield valid programs and consistent
traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generator import build_program
from repro.workloads.interpreter import execute
from repro.workloads.profiles import TakenBiasClass, WorkloadProfile


@st.composite
def profiles(draw):
    n_procedures = draw(st.integers(4, 30))
    low = draw(st.integers(3, 8))
    high = draw(st.integers(low, low + 20))
    return WorkloadProfile(
        name="prop",
        description="hypothesis-generated",
        n_procedures=n_procedures,
        blocks_per_procedure=(low, high),
        mean_block_instructions=draw(
            st.floats(1.0, 15.0, allow_nan=False, allow_infinity=False)
        ),
        main_call_sites=draw(st.integers(1, 40)),
        zipf_alpha=draw(st.floats(0.1, 2.5, allow_nan=False)),
        frac_conditional=draw(st.floats(0.05, 1.0)),
        frac_loop=draw(st.floats(0.0, 0.5)),
        frac_unconditional=draw(st.floats(0.0, 0.3)),
        frac_call=draw(st.floats(0.0, 0.4)),
        frac_indirect=draw(st.floats(0.0, 0.3)),
        taken_bias_classes=(
            TakenBiasClass(0.5, 0.0, 0.2),
            TakenBiasClass(0.3, 0.8, 1.0),
            TakenBiasClass(0.1, 0.3, 0.7, correlated=True),
            TakenBiasClass(0.1, 0.3, 0.7, sticky=0.8),
        ),
        loop_iterations_log_mean=draw(st.floats(0.0, 2.5)),
        loop_iterations_log_sigma=draw(st.floats(0.1, 1.5)),
        indirect_fanout=(2, draw(st.integers(2, 12))),
        leaf_fraction=draw(st.floats(0.1, 0.6)),
        leaf_call_bias=draw(st.floats(0.0, 1.0)),
        seed=draw(st.integers(0, 2**16)),
    )


class TestGeneratedPrograms:
    @given(profiles())
    @settings(max_examples=25, deadline=None)
    def test_programs_are_structurally_valid(self, profile):
        program = build_program(profile)
        program.check()  # raises on any structural violation

    @given(profiles())
    @settings(max_examples=25, deadline=None)
    def test_every_procedure_reaches_its_return(self, profile):
        program = build_program(profile)
        # structural argument: all forward targets strictly advance and
        # the last block is a return; verify targets never point at
        # themselves except loop heads
        from repro.workloads.program import (
            ConditionalSite,
            LoopSite,
            UnconditionalSite,
        )

        for procedure in program.procedures:
            for index, block in enumerate(procedure.blocks):
                site = block.site
                if isinstance(site, (ConditionalSite, UnconditionalSite)) and not isinstance(
                    site, LoopSite
                ):
                    assert site.target_block > index

    @given(profiles(), st.integers(500, 8000))
    @settings(max_examples=20, deadline=None)
    def test_traces_are_consistent(self, profile, budget):
        program = build_program(profile)
        trace = execute(program, budget, seed=profile.seed + 1)
        trace.validate()
        assert trace.n_instructions >= min(budget, trace.n_instructions)

    @given(profiles())
    @settings(max_examples=15, deadline=None)
    def test_trace_addresses_within_program(self, profile):
        program = build_program(profile)
        trace = execute(program, 2000, seed=0)
        low = program.base_address
        high = low + program.code_bytes
        for start in trace.starts:
            assert low <= start < high

"""Tests for the Steely-Sager computed-goto variant (§6.2)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.icache import InstructionCache
from repro.core.nls_entry import NLSEntryType
from repro.core.steely_sager import SteelySagerTable
from repro.fetch.engine import FetchEngine
from repro.fetch.frontends import NLSTableFrontEnd
from repro.harness.config import ArchitectureConfig
from repro.harness.experiments import steely_sager_comparison
from repro.harness.runner import simulate
from repro.isa.branches import BranchKind
from repro.predictors.static_ import AlwaysTakenPredictor
from repro.workloads.trace import Trace


def make_table():
    geometry = CacheGeometry(8 * 1024, 32, 1)
    return SteelySagerTable(1024, geometry), geometry


class TestTableSemantics:
    def test_rejects_associative_caches(self):
        with pytest.raises(ValueError):
            SteelySagerTable(1024, CacheGeometry(8 * 1024, 32, 2))

    def test_direct_branches_behave_like_nls(self):
        table, geometry = make_table()
        table.update(0x1000, BranchKind.CALL, True, 0x2000, 0)
        prediction = table.lookup(0x1000)
        assert prediction.valid
        assert prediction.line_field == geometry.line_field(0x2000)

    def test_indirect_uses_shared_register(self):
        table, geometry = make_table()
        a, b = 0x1000, 0x1010  # two indirect sites
        table.update(a, BranchKind.INDIRECT, True, 0x2000, 0)
        table.update(b, BranchKind.INDIRECT, True, 0x3000, 0)
        # site a now reads b's target: the single register was clobbered
        assert table.lookup(a).line_field == geometry.line_field(0x3000)
        assert table.lookup(b).line_field == geometry.line_field(0x3000)

    def test_cold_register_is_invalid(self):
        table, geometry = make_table()
        table.update(0x1000, BranchKind.INDIRECT, False, 0, 0)  # type only
        assert not table.lookup(0x1000).valid

    def test_indirect_slot_reclaimed_by_direct_branch(self):
        table, geometry = make_table()
        table.update(0x1000, BranchKind.INDIRECT, True, 0x2000, 0)
        table.update(0x1000, BranchKind.CALL, True, 0x4000, 0)
        assert table.lookup(0x1000).line_field == geometry.line_field(0x4000)

    def test_flush_clears_register(self):
        table, _ = make_table()
        table.update(0x1000, BranchKind.INDIRECT, True, 0x2000, 0)
        table.flush()
        assert not table.goto_valid


class TestEndToEnd:
    def test_two_hot_indirect_sites_thrash_register(self):
        cache = InstructionCache(CacheGeometry(8 * 1024, 32, 1))
        table = SteelySagerTable(1024, cache.geometry)
        engine = FetchEngine(
            cache,
            NLSTableFrontEnd(table, cache),
            direction_predictor=AlwaysTakenPredictor(),
        )
        trace = Trace("thrash")
        # two indirect sites alternating, each with a *stable* target
        for _ in range(6):
            trace.append(0x1000, 4, BranchKind.INDIRECT, True, 0x2020)
            trace.append(0x2020, 4, BranchKind.INDIRECT, True, 0x3040)
            trace.append(0x3040, 4, BranchKind.UNCONDITIONAL, True, 0x1000)
        trace.validate()
        report = engine.run(trace)
        executed, misfetched, mispredicted = report.by_kind[BranchKind.INDIRECT]
        # each site keeps reading the other's register value
        assert mispredicted == executed

    def test_per_entry_nls_handles_the_same_trace(self):
        report = simulate(
            ArchitectureConfig(frontend="nls-table", entries=1024),
            _stable_indirect_trace(),
        )
        executed, misfetched, mispredicted = report.by_kind[BranchKind.INDIRECT]
        assert mispredicted <= 2  # cold starts only

    def test_config_builds(self):
        report = simulate(
            ArchitectureConfig(frontend="steely-sager", entries=1024),
            "li",
            instructions=20_000,
        )
        assert report.n_breaks > 0

    def test_experiment_shows_register_penalty(self):
        result = steely_sager_comparison(programs=("groff",), instructions=80_000)
        assert (
            result.data["groff"]["steely-sager"]
            >= result.data["groff"]["nls-table"]
        )


def _stable_indirect_trace():
    trace = Trace("stable")
    for _ in range(6):
        trace.append(0x1000, 4, BranchKind.INDIRECT, True, 0x2020)
        trace.append(0x2020, 4, BranchKind.INDIRECT, True, 0x3040)
        trace.append(0x3040, 4, BranchKind.UNCONDITIONAL, True, 0x1000)
    trace.validate()
    return trace

#!/usr/bin/env python
"""CI service smoke: drive the simulation service end to end over HTTP.

Starts a real ``python -m repro.harness serve`` process on an
ephemeral port, submits the tier-1 smoke plan (the fig5 BTB ladder for
one program, fast engine) over HTTP, streams the NDJSON event feed to
completion, then resubmits the identical plan and asserts the
content-addressed result store served **every** cell — zero cells
re-simulated — via the dedup counters in the job manifest.

Run from the repository root (the CI service-smoke job does exactly
this)::

    PYTHONPATH=src python tests/service_smoke.py

Artifacts (job manifests, result document, store statistics, server
log) land in ``./service-artifacts`` (override with
``SERVICE_SMOKE_DIR``) so CI can upload them.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

ARTIFACT_DIR = os.environ.get("SERVICE_SMOKE_DIR", "service-artifacts")

#: the tier-1 smoke plan: one program's fig5 ladder, fast engine
SMOKE_JOB = {
    "experiment": "fig5",
    "programs": ["li"],
    "instructions": 20_000,
    "engine": "fast",
}


def fail(message: str) -> "None":
    """Print the failure and exit non-zero (CI turns this red)."""
    print(f"SERVICE SMOKE FAILED: {message}")
    sys.exit(1)


def get(url: str):
    """GET *url* and decode the JSON body."""
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def post(url: str, payload):
    """POST JSON *payload* to *url* and decode the JSON body."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def stream(url: str):
    """Consume an NDJSON event stream to its end."""
    with urllib.request.urlopen(url, timeout=120) as response:
        return [json.loads(line) for line in response if line.strip()]


def write_artifact(name: str, payload) -> None:
    path = os.path.join(ARTIFACT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"artifact -> {path}")


def start_server(store_path: str):
    """Launch ``serve`` on an ephemeral port; returns (process, url)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.harness",
            "serve",
            "--port",
            "0",
            "--store",
            store_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    deadline = time.time() + 30
    url = None
    lines = []
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line)
        if line.startswith("serving on "):
            url = line.split("serving on ", 1)[1].strip()
            break
    if url is None:
        process.kill()
        fail(f"server never reported its URL; output: {''.join(lines)}")
    wait_ready(url)
    return process, url


def wait_ready(url: str, timeout: float = 30.0) -> None:
    """Poll ``/readyz`` until the server answers ready — no sleeps."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        try:
            body = get(f"{url}/readyz")
            if body.get("ready"):
                return
        except (urllib.error.URLError, OSError):
            pass
        time.sleep(0.1)
    fail(f"server never became ready at {url}/readyz")


def run_job(url: str, label: str):
    """Submit the smoke job, stream it to completion, return
    (manifest, result)."""
    submitted = post(f"{url}/api/v1/jobs", SMOKE_JOB)
    job_id = submitted["job_id"]
    print(f"{label}: submitted {job_id} (state {submitted['state']})")
    events = stream(f"{url}/api/v1/jobs/{job_id}/events")
    kinds = [event["event"] for event in events]
    if kinds[-1] != "job-completed":
        fail(f"{label}: stream ended on {kinds[-1]!r}, not job-completed")
    cell_events = [event for event in events if event["event"] == "cell"]
    print(
        f"{label}: streamed {len(events)} events "
        f"({len(cell_events)} cells) to completion"
    )
    manifest = get(f"{url}/api/v1/jobs/{job_id}/manifest")
    result = get(f"{url}/api/v1/jobs/{job_id}/result")
    write_artifact(f"job-manifest-{label}.json", manifest)
    return manifest, result


def main() -> int:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    store_path = os.path.join(ARTIFACT_DIR, "store.sqlite")
    process, url = start_server(store_path)
    print(f"server up at {url}")
    try:
        health = get(f"{url}/healthz")
        if not health.get("ok"):
            fail(f"unhealthy server: {health}")

        first_manifest, first_result = run_job(url, "first")
        counters = first_manifest["counters"]
        if counters["store_hits"] != 0:
            fail(f"fresh store should have no hits: {counters}")
        if counters["cells_computed"] != counters["cells_unique"]:
            fail(f"first run should compute every cell: {counters}")

        second_manifest, second_result = run_job(url, "second")
        counters = second_manifest["counters"]
        if counters["store_hits"] != counters["cells_unique"]:
            fail(f"resubmission should be 100% store hits: {counters}")
        if counters["cells_computed"] != 0 or counters["store_misses"] != 0:
            fail(f"resubmission re-simulated cells: {counters}")

        first_bytes = {
            cell["cell"]: json.dumps(cell["report"], sort_keys=True)
            for cell in first_result["cells"]
        }
        for cell in second_result["cells"]:
            if json.dumps(cell["report"], sort_keys=True) != first_bytes.get(
                cell["cell"]
            ):
                fail(f"cell {cell['cell']} not byte-identical across jobs")

        stats = get(f"{url}/api/v1/store/stats")
        write_artifact("store-stats.json", stats)
        write_artifact("job-result.json", second_result)
        if stats["store"]["entries"] != counters["cells_unique"]:
            fail(f"store entry count mismatch: {stats['store']}")
        print(
            f"OK: {counters['cells_unique']} cells computed once, "
            f"resubmission served {counters['store_hits']} from the store "
            f"(zero re-simulated), reports byte-identical"
        )
        return 0
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    sys.exit(main())
